"""Interface (transactor) generation: the compiler's third output (Figure 6).

For every synchronizer on the HW/SW cut the compiler must produce the glue
that implements its two endpoints over the physical channel: a virtual
channel id, marshaling/demarshaling code sized by the element type's
canonical bit layout, and an arbiter entry that multiplexes all virtual
channels onto the one physical link.  This module derives that information
from a partitioning (:class:`InterfaceSpec`) and renders it in three forms:

* a software-side C header (virtual-channel table + send/receive helpers),
* a hardware-side BSV arbiter/marshaler skeleton, and
* a human-readable report used by the examples and the Figure 12/14
  structure benchmarks.

Because the spec is derived purely from the cut, the paper's "Interface
Only" methodology falls out for free: a team can implement either side by
hand against this contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.domains import Domain
from repro.core.partition import Partitioning
from repro.core.synchronizers import SyncFifo
from repro.core.types import words_for
from repro.platform.marshal import message_words


@dataclass(frozen=True)
class ChannelSpec:
    """One synchronizer's mapping onto the physical channel."""

    vc_id: int
    name: str
    producer: str
    consumer: str
    element_type: str
    payload_words: int
    message_words: int
    depth: int

    @property
    def direction(self) -> str:
        return f"{self.producer}->{self.consumer}"


@dataclass
class InterfaceSpec:
    """The complete HW/SW interface of one partitioned design."""

    design_name: str
    channels: List[ChannelSpec]
    word_bits: int = 32

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    def channels_towards(self, consumer_domain: str) -> List[ChannelSpec]:
        return [c for c in self.channels if c.consumer == consumer_domain]

    def report(self) -> str:
        """Human-readable summary of the generated interface."""
        lines = [f"HW/SW interface for {self.design_name}: {self.n_channels} virtual channel(s)"]
        for ch in self.channels:
            lines.append(
                f"  vc{ch.vc_id:<3} {ch.name:<14} {ch.direction:<10} depth={ch.depth} "
                f"{ch.payload_words:>4} payload words ({ch.message_words} with header)  {ch.element_type}"
            )
        return "\n".join(lines)


def build_interface_spec(partitioning: Partitioning, word_bits: int = 32) -> InterfaceSpec:
    """Derive the interface specification from a partitioned design's cut set."""
    channels: List[ChannelSpec] = []
    for vc_id, sync in enumerate(partitioning.cut):
        channels.append(
            ChannelSpec(
                vc_id=vc_id,
                name=sync.name,
                producer=sync.domain_enq.name,
                consumer=sync.domain_deq.name,
                element_type=repr(sync.ty),
                payload_words=words_for(sync.ty, word_bits),
                message_words=message_words(sync.ty, word_bits),
                depth=sync.depth,
            )
        )
    return InterfaceSpec(design_name=partitioning.design.name, channels=channels, word_bits=word_bits)


def generate_sw_header(spec: InterfaceSpec) -> str:
    """Generate the software-side C header describing the virtual-channel table."""
    lines = [
        "/* Generated HW/SW interface header -- do not edit by hand. */",
        f"/* design: {spec.design_name} */",
        "#pragma once",
        "#include <stdint.h>",
        "",
        f"#define BCL_CHANNEL_WORD_BITS {spec.word_bits}",
        f"#define BCL_NUM_VIRTUAL_CHANNELS {spec.n_channels}",
        "",
    ]
    for ch in spec.channels:
        macro = ch.name.upper()
        lines.append(f"#define BCL_VC_{macro} {ch.vc_id}")
        lines.append(f"#define BCL_VC_{macro}_PAYLOAD_WORDS {ch.payload_words}")
        lines.append(f"#define BCL_VC_{macro}_DEPTH {ch.depth}")
    lines.append("")
    lines.append("typedef struct { uint8_t vc; uint16_t len; } bcl_msg_header_t;")
    lines.append("")
    for ch in spec.channels:
        if ch.consumer == "HW":
            lines.append(
                f"int bcl_send_{ch.name}(const uint32_t payload[{ch.payload_words}]); /* SW -> HW */"
            )
        if ch.producer == "HW":
            lines.append(
                f"int bcl_recv_{ch.name}(uint32_t payload[{ch.payload_words}]);      /* HW -> SW */"
            )
    return "\n".join(lines) + "\n"


def generate_hw_arbiter(spec: InterfaceSpec) -> str:
    """Generate the hardware-side BSV arbiter/marshaling skeleton."""
    lines = [
        "// Generated HW/SW interface (hardware side): arbitration + (de)marshaling",
        f"// design: {spec.design_name}",
        "import FIFO::*;",
        "",
        "module mkHwSwInterface (Empty);",
        "  // One marshaling engine per outbound virtual channel, one demarshaler per inbound.",
    ]
    for ch in spec.channels:
        if ch.producer == "HW":
            lines.append(
                f"  // vc {ch.vc_id}: marshal {ch.name} ({ch.payload_words} words) onto the link"
            )
            lines.append(f"  FIFO#(Bit#({spec.word_bits})) {ch.name}_out <- mkSizedFIFO({ch.depth});")
        else:
            lines.append(
                f"  // vc {ch.vc_id}: demarshal {ch.name} ({ch.payload_words} words) from the link"
            )
            lines.append(f"  FIFO#(Bit#({spec.word_bits})) {ch.name}_in <- mkSizedFIFO({ch.depth});")
    lines.append("")
    lines.append("  // Round-robin arbitration of outbound virtual channels onto the physical link.")
    outbound = [ch for ch in spec.channels if ch.producer == "HW"]
    for ch in outbound:
        lines.append(f"  rule arbitrate_{ch.name};")
        lines.append(f"    // grant vc {ch.vc_id} when its turn comes and it has a full message")
        lines.append("  endrule")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
