"""Comparison baselines: hand-coded software (F2) and a SystemC-style model (F1)."""
