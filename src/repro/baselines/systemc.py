"""A miniature SystemC-like discrete-event simulation kernel.

The paper compares its generated software against a SystemC implementation of
the full-software Vorbis partition and finds the SystemC version roughly 3x
slower, "due to the required overhead of modeling all the simulation events"
(Section 7.1).  To reproduce that comparison without the real (C++) SystemC
library, this module implements the essential execution model of a SystemC
behavioural simulation:

* *processes* (SC_THREAD/SC_METHOD equivalents) sensitive to events,
* *channels* (``sc_fifo`` equivalents) that notify readers/writers through
  events, and
* a *delta-cycle* event scheduler that repeatedly selects the next event,
  activates every sensitive process and pays a context-switch/bookkeeping
  overhead for each activation -- the overhead that makes event-driven
  modeling slower than direct software.

The cost model charges the same kernel CPU costs as the generated software
plus the per-activation and per-event overheads, so the resulting slowdown
factor is produced by the same mechanism as in the paper rather than being
hard-coded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional


@dataclass(frozen=True)
class SystemCCostParams:
    """CPU-cycle costs of the event-driven simulation kernel itself."""

    #: Scheduler work per delta cycle (event queue maintenance, channel update phase).
    delta_cycle_overhead: int = 600
    #: Cost of resuming one process (context switch, sensitivity re-evaluation).
    process_activation: int = 800
    #: Cost of one event notification (posting to the event queue).
    event_notify: int = 170
    #: Cost of one blocking channel read/write call (sc_fifo style interface).
    channel_access: int = 240


class ScEvent:
    """An event processes can wait on; notification wakes every waiter."""

    def __init__(self, name: str):
        self.name = name
        self.waiters: List["ScProcess"] = []


class ScFifo:
    """A bounded FIFO channel with data-written / data-read events."""

    def __init__(self, name: str, depth: int = 2):
        self.name = name
        self.depth = depth
        self.items: Deque[object] = deque()
        self.data_written = ScEvent(f"{name}.data_written")
        self.data_read = ScEvent(f"{name}.data_read")

    def can_write(self) -> bool:
        return len(self.items) < self.depth

    def can_read(self) -> bool:
        return len(self.items) > 0


class ScProcess:
    """A behavioural process: a callable run whenever one of its events fires.

    ``behaviour(sim)`` returns the CPU cycles of useful work it performed (0
    if it merely checked its channels and went back to sleep).
    """

    def __init__(self, name: str, behaviour: Callable[["SystemCSimulator"], int]):
        self.name = name
        self.behaviour = behaviour
        self.activations = 0


class SystemCSimulator:
    """The delta-cycle scheduler."""

    def __init__(self, costs: Optional[SystemCCostParams] = None):
        self.costs = costs or SystemCCostParams()
        self.processes: List[ScProcess] = []
        self.fifos: List[ScFifo] = []
        self._runnable: Deque[ScProcess] = deque()
        self._pending_events: Deque[ScEvent] = deque()
        # Statistics (CPU cycles)
        self.cpu_cycles = 0.0
        self.useful_cpu_cycles = 0.0
        self.delta_cycles = 0
        self.activations = 0
        self.events = 0

    # -- construction ------------------------------------------------------------

    def add_process(self, process: ScProcess, sensitive_to: List[ScEvent]) -> ScProcess:
        self.processes.append(process)
        for event in sensitive_to:
            event.waiters.append(process)
        self._runnable.append(process)  # initial evaluation phase
        return process

    def add_fifo(self, fifo: ScFifo) -> ScFifo:
        self.fifos.append(fifo)
        return fifo

    # -- channel operations (called from process behaviours) -----------------------

    def write(self, fifo: ScFifo, value: object) -> bool:
        self.cpu_cycles += self.costs.channel_access
        if not fifo.can_write():
            return False
        fifo.items.append(value)
        self.notify(fifo.data_written)
        return True

    def read(self, fifo: ScFifo) -> Optional[object]:
        self.cpu_cycles += self.costs.channel_access
        if not fifo.can_read():
            return None
        value = fifo.items.popleft()
        self.notify(fifo.data_read)
        return value

    def notify(self, event: ScEvent) -> None:
        self.cpu_cycles += self.costs.event_notify
        self.events += 1
        self._pending_events.append(event)

    # -- scheduler ------------------------------------------------------------------

    def _evaluate_phase(self) -> None:
        ran = list(self._runnable)
        self._runnable.clear()
        for process in ran:
            self.cpu_cycles += self.costs.process_activation
            self.activations += 1
            process.activations += 1
            useful = process.behaviour(self)
            self.useful_cpu_cycles += useful
            self.cpu_cycles += useful

    def _update_phase(self) -> None:
        woken: List[ScProcess] = []
        while self._pending_events:
            event = self._pending_events.popleft()
            for process in event.waiters:
                if process not in woken:
                    woken.append(process)
        self._runnable.extend(woken)

    def run(self, done: Callable[["SystemCSimulator"], bool], max_delta_cycles: int = 2_000_000) -> float:
        """Run delta cycles until ``done`` or quiescence; returns CPU cycles spent."""
        while not done(self) and self.delta_cycles < max_delta_cycles:
            if not self._runnable:
                break
            self.delta_cycles += 1
            self.cpu_cycles += self.costs.delta_cycle_overhead
            self._evaluate_phase()
            self._update_phase()
        return self.cpu_cycles
