"""Hand-coded software baselines (the F1 / F2 columns of Figure 13).

``run_handcoded_vorbis`` is the "manual C++" baseline: a direct per-frame
loop (it simply reuses :mod:`repro.apps.vorbis.reference`).  ``run_systemc_vorbis``
builds the same full-software pipeline as communicating processes on the
miniature SystemC kernel of :mod:`repro.baselines.systemc`, so its slowdown
relative to the generated software arises from event/activation overheads,
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.vorbis import kernels
from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.reference import ReferenceResult, decode
from repro.baselines.systemc import ScFifo, ScProcess, SystemCSimulator
from repro.core.fixedpoint import FixedPoint


@dataclass
class BaselineResult:
    """Execution-time estimate of a baseline implementation."""

    name: str
    checksum: int
    cpu_cycles: float
    frames: int

    def fpga_cycles(self, cpu_per_fpga: float = 4.0) -> float:
        return self.cpu_cycles / cpu_per_fpga

    def fpga_cycles_per_frame(self, cpu_per_fpga: float = 4.0) -> float:
        return self.fpga_cycles(cpu_per_fpga) / max(1, self.frames)


def run_handcoded_vorbis(params: Optional[VorbisParams] = None) -> BaselineResult:
    """The hand-written C++ equivalent (partition F2)."""
    params = params or VorbisParams()
    ref: ReferenceResult = decode(params, keep_pcm=False)
    return BaselineResult(
        name="handcoded-C++",
        checksum=ref.checksum,
        cpu_cycles=ref.cpu_cycles,
        frames=params.n_frames,
    )


def run_systemc_vorbis(params: Optional[VorbisParams] = None) -> BaselineResult:
    """The SystemC model of the full-software partition (partition F1).

    Each pipeline stage is a process sensitive to its input channel; the
    kernel costs are identical to the generated software's, and everything
    on top of them is event-driven simulation overhead.
    """
    params = params or VorbisParams()
    n, ib, fb = params.n, params.int_bits, params.frac_bits
    costs = kernels.kernel_costs(n)
    stages_per_rule = (
        params.ifft_points.bit_length() - 1 + params.ifft_stages - 1
    ) // params.ifft_stages

    sim = SystemCSimulator()
    q_in = sim.add_fifo(ScFifo("q_in"))
    q_ctrl = sim.add_fifo(ScFifo("q_ctrl"))
    q_pre = sim.add_fifo(ScFifo("q_pre"))
    q_ifft = sim.add_fifo(ScFifo("q_ifft"))
    q_post = sim.add_fifo(ScFifo("q_post"))
    q_pcm = sim.add_fifo(ScFifo("q_pcm"))

    state = {
        "frame_idx": 0,
        "prev_half": tuple(FixedPoint.zero(ib, fb) for _ in range(n)),
        "checksum": 0,
        "frames_out": 0,
    }

    def frontend(s: SystemCSimulator) -> int:
        if state["frame_idx"] >= params.n_frames or not q_in.can_write():
            return 0
        frame = kernels.gen_frame(state["frame_idx"], n, params.seed, ib, fb)
        if s.write(q_in, frame):
            state["frame_idx"] += 1
            return costs["gen_frame"][0]
        return 0

    def make_stage(src: ScFifo, dst: ScFifo, fn, cost: int):
        def stage(s: SystemCSimulator) -> int:
            if not src.can_read() or not dst.can_write():
                return 0
            value = s.read(src)
            s.write(dst, fn(value))
            return cost

        return stage

    def ifft_fn(spectrum):
        for stage in range(params.ifft_stages):
            spectrum = kernels.ifft_rule_stage(stage, spectrum, stages_per_rule, ib, fb)
        return spectrum

    def window_proc(s: SystemCSimulator) -> int:
        if not q_post.can_read() or not q_pcm.can_write():
            return 0
        samples = s.read(q_post)
        pcm, state["prev_half"] = kernels.window_overlap(state["prev_half"], samples, ib, fb)
        s.write(q_pcm, pcm)
        return costs["window_overlap"][0]

    def audio_proc(s: SystemCSimulator) -> int:
        if not q_pcm.can_read():
            return 0
        pcm = s.read(q_pcm)
        state["checksum"] = kernels.audio_checksum(pcm, state["checksum"])
        state["frames_out"] += 1
        return costs["audio_out"][0]

    sim.add_process(ScProcess("frontend", frontend), [q_in.data_read])
    sim.add_process(
        ScProcess(
            "ctrl",
            make_stage(
                q_in, q_ctrl, lambda f: kernels.backend_input(f, ib, fb), costs["backend_input"][0]
            ),
        ),
        [q_in.data_written, q_ctrl.data_read],
    )
    sim.add_process(
        ScProcess(
            "imdct_pre",
            make_stage(
                q_ctrl, q_pre, lambda f: kernels.imdct_pre(f, ib, fb), costs["imdct_pre"][0]
            ),
        ),
        [q_ctrl.data_written, q_pre.data_read],
    )
    sim.add_process(
        ScProcess(
            "ifft",
            make_stage(q_pre, q_ifft, ifft_fn, params.ifft_stages * costs["ifft_rule_stage"][0]),
        ),
        [q_pre.data_written, q_ifft.data_read],
    )
    sim.add_process(
        ScProcess(
            "imdct_post",
            make_stage(
                q_ifft, q_post, lambda s_: kernels.imdct_post(s_, ib, fb), costs["imdct_post"][0]
            ),
        ),
        [q_ifft.data_written, q_post.data_read],
    )
    sim.add_process(ScProcess("window", window_proc), [q_post.data_written, q_pcm.data_read])
    sim.add_process(ScProcess("audio", audio_proc), [q_pcm.data_written])

    cpu = sim.run(lambda s: state["frames_out"] >= params.n_frames)
    return BaselineResult(
        name="systemc",
        checksum=state["checksum"],
        cpu_cycles=cpu,
        frames=params.n_frames,
    )
