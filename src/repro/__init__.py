"""Reproduction of *Automatic Generation of Hardware/Software Interfaces* (ASPLOS 2012).

The package implements BCL -- the Bluespec Codesign Language of King, Dave and
Arvind -- as an embedded Python DSL, together with everything the paper's
evaluation depends on:

``repro.core``
    The kernel language (guarded atomic actions, rules, modules), its
    operational semantics, the when-axioms and compiler optimisations,
    computational domains and the partitioner.
``repro.codegen``
    C++ / BSV / Verilog source generation and HW/SW interface (transactor)
    generation.
``repro.platform``
    The physical-channel substrate: shared bus / LocalLink model, LIBDN
    FIFOs, marshaling.
``repro.sim``
    The hardware cycle simulator, the software cost-model engine and the
    co-simulator that connects partitions over a channel.
``repro.apps``
    The two applications evaluated in the paper: the Ogg Vorbis back-end and
    a ray tracer, each with the full set of HW/SW partitions.
``repro.baselines``
    Hand-coded software and SystemC-style discrete-event baselines.
"""

from repro.core.types import (
    BoolT,
    BitT,
    UIntT,
    IntT,
    FixPtT,
    ComplexT,
    VectorT,
    StructT,
)
from repro.core.fixedpoint import FixedPoint, FixComplex
from repro.core.module import Module, Register, Rule, Method, Design
from repro.core.primitives import Fifo, RegFile, PulseWire
from repro.core.synchronizers import SyncFifo
from repro.core.domains import Domain, HW, SW, DomainError
from repro.core.partition import partition_design
from repro.sim.cosim import CosimFabric, Cosimulator, CosimResult
from repro.platform.channel import Topology
from repro.platform.platform import Platform

__version__ = "1.0.0"

__all__ = [
    "BoolT",
    "BitT",
    "UIntT",
    "IntT",
    "FixPtT",
    "ComplexT",
    "VectorT",
    "StructT",
    "FixedPoint",
    "FixComplex",
    "Module",
    "Register",
    "Rule",
    "Method",
    "Design",
    "Fifo",
    "RegFile",
    "PulseWire",
    "SyncFifo",
    "Domain",
    "HW",
    "SW",
    "DomainError",
    "partition_design",
    "CosimFabric",
    "Cosimulator",
    "CosimResult",
    "Topology",
    "Platform",
]
