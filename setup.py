"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that legacy editable installs
(``pip install -e .``) work in offline environments without the ``wheel``
package.
"""

from setuptools import setup

setup()
