"""Tests for computational domains, synchronizers and the partitioner (Sections 4.2/4.3)."""

import pytest

from repro.core.action import par
from repro.core.domains import (
    HW,
    SW,
    Domain,
    DomainError,
    DomainVar,
    design_domains,
    infer_design_domains,
    infer_rule_domain,
    substitute_domains,
    unresolved_domain_variables,
)
from repro.core.errors import PartitionError
from repro.core.expr import BinOp, Const, RegRead
from repro.core.module import Design, Module
from repro.core.partition import default_engine_kind, partition_design
from repro.core.synchronizers import (
    SyncFifo,
    all_synchronizers,
    cross_domain_synchronizers,
    make_sync_h_to_s,
    make_sync_s_to_h,
    specialize_synchronizers,
)
from repro.core.types import UIntT


def build_two_domain_design(consumer_domain=HW):
    top = Module("top")
    producer = top.add_submodule(Module("producer", domain=SW))
    consumer = top.add_submodule(Module("consumer", domain=consumer_domain))
    sync = top.add_submodule(SyncFifo("x_q", UIntT(32), SW, consumer_domain, depth=2))
    cnt = producer.add_register("cnt", UIntT(32), 0)
    acc = consumer.add_register("acc", UIntT(32), 0)
    producer.add_rule(
        "produce",
        par(sync.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
        .when(BinOp("<", RegRead(cnt), Const(4))),
    )
    consumer.add_rule(
        "consume",
        par(acc.write(BinOp("+", RegRead(acc), sync.value("first"))), sync.call("deq")),
    )
    return Design(top), producer, consumer, sync


class TestDomains:
    def test_domain_equality(self):
        assert Domain("HW") == HW
        assert Domain("HW") != SW
        assert hash(Domain("SW")) == hash(SW)

    def test_domain_var_is_distinct(self):
        assert DomainVar("a") != Domain("a")
        assert DomainVar("a").is_variable

    def test_rule_domain_inference(self):
        design, producer, consumer, sync = build_two_domain_design()
        domains = infer_design_domains(design)
        by_name = {rule.name: dom for rule, dom in domains.items()}
        assert by_name["produce"] == SW
        assert by_name["consume"] == HW

    def test_cross_domain_rule_rejected(self):
        """A rule that touches state of two domains violates the type system."""
        top = Module("top")
        hw_mod = top.add_submodule(Module("hw", domain=HW))
        sw_mod = top.add_submodule(Module("sw", domain=SW))
        a = hw_mod.add_register("a", UIntT(32), 0)
        b = sw_mod.add_register("b", UIntT(32), 0)
        rule = top.add_rule("bad", par(a.write(Const(1)), b.write(Const(2))))
        with pytest.raises(DomainError):
            infer_rule_domain(rule)

    def test_rule_without_domain_uses_default(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        rule = top.add_rule("r", a.write(Const(1)))
        assert infer_rule_domain(rule, default=SW) == SW
        with pytest.raises(DomainError):
            infer_rule_domain(rule, default=None)

    def test_design_domains_listing(self):
        design, *_ = build_two_domain_design()
        assert design_domains(design) == [HW, SW]

    def test_domain_polymorphism_substitution(self):
        """The paper's Sync#(t, a, HW) pattern: instantiate `a` later."""
        var = DomainVar("a")
        design, producer, consumer, sync = build_two_domain_design()
        poly = SyncFifo("poly_q", UIntT(32), var, HW)
        design.root.add_submodule(poly)
        assert unresolved_domain_variables(design) == ["a"]
        specialize_synchronizers(design, {"a": HW})
        substitute_domains(design, {"a": HW})
        assert unresolved_domain_variables(design) == []
        assert not poly.is_cross_domain  # same-domain sync becomes a plain FIFO

    def test_unresolved_variable_blocks_partitioning(self):
        design, *_ = build_two_domain_design()
        design.root.add_submodule(SyncFifo("poly_q", UIntT(32), DomainVar("a"), HW))
        with pytest.raises(PartitionError):
            partition_design(design, SW)


class TestSynchronizers:
    def test_sync_method_domains(self):
        sync = make_sync_s_to_h("s2h", UIntT(32))
        assert sync.get_method("enq").domain == SW
        assert sync.get_method("first").domain == HW
        assert sync.get_method("deq").domain == HW

    def test_sync_h_to_s(self):
        sync = make_sync_h_to_s("h2s", UIntT(32))
        assert sync.get_method("enq").domain == HW
        assert sync.get_method("deq").domain == SW

    def test_cross_domain_detection(self):
        design, producer, consumer, sync = build_two_domain_design()
        assert all_synchronizers(design) == [sync]
        assert cross_domain_synchronizers(design) == [sync]

    def test_same_domain_sync_not_on_cut(self):
        design, producer, consumer, sync = build_two_domain_design(consumer_domain=SW)
        assert cross_domain_synchronizers(design) == []

    def test_sync_behaves_as_fifo(self):
        """Semantically a synchronizer is just a latency-insensitive FIFO."""
        from repro.core.interpreter import Simulator

        design, producer, consumer, sync = build_two_domain_design()
        sim = Simulator(design)
        sim.run(1000)
        acc = design.find_module("consumer").registers[0]
        assert sim.read(acc) == sum(range(4))


class TestPartitioner:
    def test_partition_programs_and_cut(self):
        design, producer, consumer, sync = build_two_domain_design()
        partitioning = partition_design(design, SW)
        assert set(partitioning.programs) == {HW, SW}
        assert partitioning.cut == [sync]
        sw_rules = {r.name for r in partitioning.program(SW).rules}
        hw_rules = {r.name for r in partitioning.program(HW).rules}
        assert sw_rules == {"produce"}
        assert hw_rules == {"consume"}

    def test_partition_state_ownership(self):
        design, producer, consumer, sync = build_two_domain_design()
        partitioning = partition_design(design, SW)
        sw_regs = {r.name for r in partitioning.program(SW).registers}
        hw_regs = {r.name for r in partitioning.program(HW).registers}
        assert "cnt" in sw_regs
        assert "acc" in hw_regs

    def test_partition_endpoint_classification(self):
        design, producer, consumer, sync = build_two_domain_design()
        partitioning = partition_design(design, SW)
        assert partitioning.program(SW).produces_to == [sync]
        assert partitioning.program(HW).consumes_from == [sync]

    def test_single_domain_design_has_empty_cut(self):
        design, *_ = build_two_domain_design(consumer_domain=SW)
        partitioning = partition_design(design, SW)
        assert partitioning.cut == []
        assert list(partitioning.programs) == [SW]

    def test_shared_state_without_synchronizer_rejected(self):
        """Two domains touching the same register is the codesign pitfall the type system prevents."""
        top = Module("top")
        shared = top.add_register("shared", UIntT(32), 0)
        hw_mod = top.add_submodule(Module("hw", domain=HW))
        sw_mod = top.add_submodule(Module("sw", domain=SW))
        hw_mod.add_rule("hw_touch", shared.write(Const(1)), domain=HW)
        sw_mod.add_rule("sw_touch", shared.write(Const(2)), domain=SW)
        with pytest.raises(PartitionError):
            partition_design(Design(top), SW)

    def test_summary_is_readable(self):
        design, *_ = build_two_domain_design()
        text = partition_design(design, SW).summary()
        assert "produce" in text and "consume" in text and "x_q" in text


class TestEngineKinds:
    """One engine-kind convention, shared by every layer (regression for the
    historical split where the fabric matched ``HW`` case-insensitively but
    the sweep example matched case-sensitively)."""

    def test_default_engine_kind_is_case_insensitive(self):
        assert default_engine_kind("HW") == "hw"
        assert default_engine_kind("hw_accel") == "hw"
        assert default_engine_kind("Hw_Imdct") == "hw"
        assert default_engine_kind(Domain("HW_WIN")) == "hw"
        assert default_engine_kind("SW") == "sw"
        assert default_engine_kind("dsp") == "sw"

    def test_fabric_defaults_agree_with_the_partition_helper(self):
        from repro.sim.cosim import default_engine_kinds

        domains = [Domain("hw_accel"), Domain("HW"), Domain("SW"), Domain("dsp")]
        fabric_kinds = default_engine_kinds(domains)
        assert fabric_kinds == {d.name: default_engine_kind(d) for d in domains}
        assert fabric_kinds["hw_accel"] == "hw"

    def test_partitioning_engine_kinds_with_overrides(self):
        design, *_ = build_two_domain_design()
        partitioning = partition_design(design, SW)
        assert partitioning.engine_kinds() == {"HW": "hw", "SW": "sw"}
        assert partitioning.engine_kinds({"HW": "sw"}) == {"HW": "sw", "SW": "sw"}
        assert partitioning.engine_kind(HW) == "hw"
        assert partitioning.engine_kind("HW", {"HW": "sw"}) == "sw"

    def test_unknown_override_domain_rejected(self):
        design, *_ = build_two_domain_design()
        partitioning = partition_design(design, SW)
        with pytest.raises(PartitionError):
            partitioning.engine_kinds({"DSP": "hw"})
        with pytest.raises(PartitionError):
            partitioning.engine_kinds({"HW": "fpga"})
        # engine_kind is a lookup into engine_kinds: same validation, no
        # silent fallback for typo'd domains or invalid overrides.
        with pytest.raises(PartitionError):
            partitioning.engine_kind("TYPO_DOMAIN")
        with pytest.raises(PartitionError):
            partitioning.engine_kind("HW", {"BOGUS": "hw"})

    def test_lowercase_hw_domain_simulates_as_hardware(self):
        """A domain named ``hw_accel`` must get the hardware engine -- the
        case-sensitive example-side check historically made it software."""
        from repro.sim.cosim import CosimFabric

        design, *_ = build_two_domain_design(consumer_domain=Domain("hw_accel"))
        fabric = CosimFabric(design)
        assert fabric.engine_kinds == {"SW": "sw", "hw_accel": "hw"}
        from repro.sim.hwsim import HwEngine

        assert isinstance(fabric.engine("hw_accel"), HwEngine)

    def test_same_domain_synchronizer_owned_by_its_endpoint_domain(self):
        """A specialised (same-domain) synchronizer's state belongs to its
        endpoint domain, not to the partitioner's default domain."""
        top = Module("top")
        producer = top.add_submodule(Module("producer", domain=Domain("HW_A")))
        consumer = top.add_submodule(Module("consumer", domain=Domain("HW_A")))
        sync = top.add_submodule(SyncFifo("q", UIntT(32), Domain("HW_A"), Domain("HW_A")))
        cnt = producer.add_register("cnt", UIntT(32), 0)
        acc = consumer.add_register("acc", UIntT(32), 0)
        producer.add_rule(
            "produce",
            par(sync.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
            .when(BinOp("<", RegRead(cnt), Const(2))),
        )
        consumer.add_rule(
            "consume", par(acc.write(sync.value("first")), sync.call("deq"))
        )
        partitioning = partition_design(Design(top, "samedom"), SW)
        assert partitioning.cut == []
        prog = partitioning.program(Domain("HW_A"))
        assert sync in prog.modules
        assert all(sync not in p.modules for d, p in partitioning.programs.items() if d.name != "HW_A")
