"""Unit and property tests for fixed-point and complex fixed-point arithmetic."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixedpoint import FixComplex, FixedPoint, fix_complex_vector, fix_vector

floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


class TestFixedPointBasics:
    def test_from_float_roundtrip(self):
        x = FixedPoint.from_float(1.5)
        assert x.to_float() == pytest.approx(1.5)

    def test_zero(self):
        assert FixedPoint.zero().to_float() == 0.0
        assert FixedPoint.zero().raw == 0

    def test_quantisation_error_bounded(self):
        value = 0.123456789
        x = FixedPoint.from_float(value)
        assert abs(x.to_float() - value) <= 1.0 / (1 << 24)

    def test_negative_values(self):
        x = FixedPoint.from_float(-2.25)
        assert x.to_float() == pytest.approx(-2.25)
        assert x.raw < 0

    def test_addition(self):
        a, b = FixedPoint.from_float(1.25), FixedPoint.from_float(2.5)
        assert (a + b).to_float() == pytest.approx(3.75)

    def test_subtraction(self):
        a, b = FixedPoint.from_float(1.25), FixedPoint.from_float(2.5)
        assert (a - b).to_float() == pytest.approx(-1.25)

    def test_multiplication(self):
        a, b = FixedPoint.from_float(1.5), FixedPoint.from_float(-2.0)
        assert (a * b).to_float() == pytest.approx(-3.0)

    def test_division(self):
        a, b = FixedPoint.from_float(3.0), FixedPoint.from_float(2.0)
        assert (a / b).to_float() == pytest.approx(1.5)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            FixedPoint.from_float(1.0) / FixedPoint.zero()

    def test_mixed_scalar_arithmetic(self):
        a = FixedPoint.from_float(1.0)
        assert (a + 1).to_float() == pytest.approx(2.0)
        assert (2 * a).to_float() == pytest.approx(2.0)
        assert (1 - a).to_float() == pytest.approx(0.0)

    def test_negation_and_abs(self):
        a = FixedPoint.from_float(-1.5)
        assert (-a).to_float() == pytest.approx(1.5)
        assert abs(a).to_float() == pytest.approx(1.5)

    def test_shifts(self):
        a = FixedPoint.from_float(1.0)
        assert (a >> 1).to_float() == pytest.approx(0.5)
        assert (a << 1).to_float() == pytest.approx(2.0)

    def test_comparisons(self):
        a, b = FixedPoint.from_float(1.0), FixedPoint.from_float(2.0)
        assert a < b and a <= b and b > a and b >= a
        assert not (a > b)

    def test_format_mismatch_rejected(self):
        a = FixedPoint.from_float(1.0, 8, 24)
        b = FixedPoint.from_float(1.0, 16, 16)
        with pytest.raises(TypeError):
            _ = a + b

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            _ = FixedPoint.from_float(1.0) + True

    def test_wrapping_is_twos_complement(self):
        big = FixedPoint.from_float(127.9)
        wrapped = big + big
        assert wrapped.to_float() < 0  # overflow wraps around

    def test_bits_roundtrip(self):
        x = FixedPoint.from_float(-3.75)
        assert FixedPoint.from_bits(x.to_bits()) == x

    def test_repr_contains_value(self):
        assert "1.5" in repr(FixedPoint.from_float(1.5))


class TestFixedPointProperties:
    @given(small_floats, small_floats)
    @settings(max_examples=60, deadline=None)
    def test_addition_matches_floats(self, a, b):
        fa, fb = FixedPoint.from_float(a), FixedPoint.from_float(b)
        assert (fa + fb).to_float() == pytest.approx(a + b, abs=1e-6)

    @given(small_floats, small_floats)
    @settings(max_examples=60, deadline=None)
    def test_multiplication_close_to_floats(self, a, b):
        fa, fb = FixedPoint.from_float(a), FixedPoint.from_float(b)
        assert (fa * fb).to_float() == pytest.approx(a * b, abs=1e-4)

    @given(small_floats)
    @settings(max_examples=60, deadline=None)
    def test_bits_roundtrip_property(self, a):
        x = FixedPoint.from_float(a)
        assert FixedPoint.from_bits(x.to_bits(), x.int_bits, x.frac_bits) == x

    @given(small_floats, small_floats)
    @settings(max_examples=60, deadline=None)
    def test_addition_commutes(self, a, b):
        fa, fb = FixedPoint.from_float(a), FixedPoint.from_float(b)
        assert fa + fb == fb + fa

    @given(small_floats)
    @settings(max_examples=60, deadline=None)
    def test_negation_is_involution(self, a):
        x = FixedPoint.from_float(a)
        assert -(-x) == x


class TestFixComplex:
    def test_construction(self):
        c = FixComplex.from_floats(1.0, -2.0)
        assert c.real.to_float() == pytest.approx(1.0)
        assert c.imag.to_float() == pytest.approx(-2.0)

    def test_addition(self):
        a = FixComplex.from_floats(1.0, 2.0)
        b = FixComplex.from_floats(0.5, -1.0)
        c = a + b
        assert c.to_complex() == pytest.approx(complex(1.5, 1.0))

    def test_complex_multiplication(self):
        a = FixComplex.from_floats(1.0, 2.0)
        b = FixComplex.from_floats(3.0, -1.0)
        assert (a * b).to_complex() == pytest.approx(complex(1, 2) * complex(3, -1), abs=1e-5)

    def test_scalar_multiplication(self):
        a = FixComplex.from_floats(1.0, 2.0)
        assert (a * FixedPoint.from_float(2.0)).to_complex() == pytest.approx(complex(2, 4))

    def test_conjugate(self):
        a = FixComplex.from_floats(1.0, 2.0)
        assert a.conj().to_complex() == pytest.approx(complex(1, -2))

    def test_negation_and_subtraction(self):
        a = FixComplex.from_floats(1.0, 2.0)
        assert (-a).to_complex() == pytest.approx(complex(-1, -2))
        assert (a - a).to_complex() == pytest.approx(0j)

    def test_zero(self):
        assert FixComplex.zero().to_complex() == 0j

    tiny = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)

    @given(tiny, tiny, tiny, tiny)
    @settings(max_examples=40, deadline=None)
    def test_multiplication_matches_python_complex(self, ar, ai, br, bi):
        # Operands are kept small enough that products stay inside the 8.24
        # format's +/-128 range (larger products wrap, by design).
        a = FixComplex.from_floats(ar, ai)
        b = FixComplex.from_floats(br, bi)
        assert (a * b).to_complex() == pytest.approx(complex(ar, ai) * complex(br, bi), abs=1e-2)


class TestVectorHelpers:
    def test_fix_vector(self):
        vec = fix_vector([0.0, 0.5, -0.5])
        assert len(vec) == 3
        assert vec[1].to_float() == pytest.approx(0.5)

    def test_fix_complex_vector(self):
        vec = fix_complex_vector([1 + 1j, -2j])
        assert len(vec) == 2
        assert vec[0].to_complex() == pytest.approx(1 + 1j)
        assert vec[1].to_complex() == pytest.approx(-2j)
