"""Tests for the when-axioms, guard lifting and the Section 6.3 optimisations.

The central property: every transformation preserves the one-rule-at-a-time
semantics -- for any state, the transformed rule fires exactly when the
original fires and produces the same updates.  Hypothesis generates random
register states to check this.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.action import IfA, LetA, Par, Seq, WhenA, par
from repro.core.errors import GuardFail
from repro.core.expr import BinOp, Const, KernelCall, Mux, RegRead, Var, WhenE
from repro.core.guards import conj, is_true_const, lift_action, lift_expr, may_fail
from repro.core.module import Design, Module
from repro.core.optimize import (
    OptimizationConfig,
    compile_rule,
    inline_methods_action,
    sequentialize_action,
)
from repro.core.primitives import Fifo
from repro.core.semantics import Evaluator
from repro.core.types import BoolT, UIntT


def build_test_module():
    top = Module("top")
    a = top.add_register("a", UIntT(32), 0)
    b = top.add_register("b", UIntT(32), 0)
    flag1 = top.add_register("flag1", BoolT(), False)
    flag2 = top.add_register("flag2", BoolT(), False)
    fifo = top.add_submodule(Fifo("q", UIntT(32), depth=2))
    return top, a, b, flag1, flag2, fifo


def equivalent(action, store):
    """Execute the original and its lifted form; both must agree."""
    evaluator = Evaluator()
    read = lambda reg: store[reg]  # noqa: E731

    def run(act):
        try:
            return True, evaluator.exec_action(act, {}, read, None)
        except GuardFail:
            return False, {}

    fired_orig, updates_orig = run(action)
    body, guard = lift_action(action)
    try:
        guard_ok = bool(evaluator.eval_expr(guard, {}, read, None))
    except GuardFail:
        guard_ok = False
    fired_lifted, updates_lifted = (False, {})
    if guard_ok:
        fired_lifted, updates_lifted = run(body)
    return (fired_orig, updates_orig), (fired_lifted, updates_lifted)


class TestWhenAxioms:
    def test_conj_drops_true(self):
        assert is_true_const(conj(Const(True), Const(True)))

    def test_lift_reg_write_guard(self):
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = a.write(WhenE(Const(5), RegRead(flag1)))  # A.7
        body, guard = lift_action(action)
        assert not is_true_const(guard)
        assert not may_fail(body, primitive_guards_hoisted=True)

    def test_lift_parallel_conjunction(self):
        """A.1/A.2: a guard on one branch guards the whole parallel composition."""
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = Par([WhenA(a.write(Const(1)), RegRead(flag1)), b.write(Const(2))])
        store = {a: 0, b: 0, flag1: False, flag2: False, fifo.data: ()}
        orig, lifted = equivalent(action, store)
        assert orig == lifted == (False, {})

    def test_lift_if_condition_guard_always_evaluated(self):
        """A.4: guards in the predicate of a condition are always evaluated."""
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = IfA(WhenE(RegRead(flag1), RegRead(flag2)), a.write(Const(1)))
        store = {a: 0, b: 0, flag1: True, flag2: False, fifo.data: ()}
        orig, lifted = equivalent(action, store)
        assert orig == lifted

    def test_lift_if_branch_guard_conditional(self):
        """A.5: a branch guard only matters when the branch is selected."""
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = IfA(RegRead(flag1), WhenA(a.write(Const(1)), RegRead(flag2)))
        # flag1 false: the branch guard must not matter.
        store = {a: 0, b: 0, flag1: False, flag2: False, fifo.data: ()}
        orig, lifted = equivalent(action, store)
        assert orig == lifted
        assert orig == (True, {})

    def test_lift_when_merging(self):
        """A.6: nested whens conjoin."""
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = WhenA(WhenA(a.write(Const(1)), RegRead(flag1)), RegRead(flag2))
        body, guard = lift_action(action)
        assert not may_fail(body, primitive_guards_hoisted=True)

    def test_sequential_guard_lifts_first_only(self):
        """A.3: only the first action's guard crosses a sequential composition."""
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = Seq([WhenA(a.write(Const(1)), RegRead(flag1)), WhenA(b.write(Const(2)), RegRead(flag2))])
        body, guard = lift_action(action)
        assert isinstance(body, Seq)
        assert may_fail(body, primitive_guards_hoisted=True)  # second when is residual

    def test_fifo_readiness_hoisted(self):
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = par(fifo.call("enq", Const(1)), a.write(fifo.value("first")))
        body, guard = lift_action(action)
        assert not is_true_const(guard)
        assert not may_fail(body, primitive_guards_hoisted=True)

    @given(st.booleans(), st.booleans(), st.integers(0, 3), st.integers(0, 10))
    @settings(max_examples=80, deadline=None)
    def test_lifting_preserves_semantics_property(self, f1, f2, occupancy, value):
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = Par(
            [
                IfA(RegRead(flag1), WhenA(a.write(Const(value)), RegRead(flag2))),
                fifo.call("enq", BinOp("+", RegRead(a), Const(1))),
                b.write(Mux(RegRead(flag2), Const(1), Const(2))),
            ]
        )
        store = {
            a: value,
            b: 0,
            flag1: f1,
            flag2: f2,
            fifo.data: tuple(range(occupancy)),
        }
        orig, lifted = equivalent(action, store)
        assert orig == lifted


class TestInlining:
    def test_inline_user_method(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        sub = top.add_submodule(Module("sub"))
        s_reg = sub.add_register("s", UIntT(32), 0)
        sub.add_method(
            "bump", "action", params=["x"], body=s_reg.write(BinOp("+", RegRead(s_reg), Var("x"))),
            guard=BinOp("<", RegRead(s_reg), Const(10)),
        )
        action = sub.call("bump", Const(3))
        inlined = inline_methods_action(action)
        # After inlining there is no MethodCallA on the user module left.
        from repro.core.action import MethodCallA

        assert not any(
            isinstance(node, MethodCallA) and not node.instance.is_primitive()
            for node in inlined.walk()
        )
        # Semantics preserved.
        evaluator = Evaluator()
        store = {a: 0, s_reg: 4}
        updates = evaluator.exec_action(inlined, {}, lambda r: store[r], None)
        assert updates == {s_reg: 7}

    def test_inline_respects_method_guard(self):
        top = Module("top")
        sub = top.add_submodule(Module("sub"))
        s_reg = sub.add_register("s", UIntT(32), 20)
        sub.add_method(
            "bump", "action", params=["x"], body=s_reg.write(Var("x")),
            guard=BinOp("<", RegRead(s_reg), Const(10)),
        )
        inlined = inline_methods_action(sub.call("bump", Const(3)))
        evaluator = Evaluator()
        with pytest.raises(GuardFail):
            evaluator.exec_action(inlined, {}, lambda r: {s_reg: 20}[r], None)

    def test_primitive_calls_not_inlined(self):
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = fifo.call("enq", Const(1))
        assert isinstance(inline_methods_action(action), type(action))


class TestSequentialization:
    def test_independent_parallel_becomes_sequential(self):
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = Par([a.write(Const(1)), b.write(Const(2))])
        result = sequentialize_action(action)
        assert isinstance(result, Seq)

    def test_swap_stays_parallel(self):
        """The register swap cannot be sequentialised without shadow state."""
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = Par([a.write(RegRead(b)), b.write(RegRead(a))])
        result = sequentialize_action(action)
        assert isinstance(result, Par)

    def test_reordering_found_when_needed(self):
        """(reader | writer) is sequentialisable as (reader ; writer)."""
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = Par([a.write(Const(5)), b.write(RegRead(a))])
        result = sequentialize_action(action)
        assert isinstance(result, Seq)
        # The reader of `a` must run before the writer of `a`.
        first = result.actions[0]
        assert first.reg is b

    @given(st.integers(0, 50), st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_sequentialization_preserves_semantics(self, av, bv):
        top, a, b, flag1, flag2, fifo = build_test_module()
        action = Par([a.write(BinOp("+", RegRead(b), Const(1))), b.write(Const(7)), fifo.call("enq", RegRead(a))])
        store = {a: av, b: bv, flag1: False, flag2: False, fifo.data: ()}
        evaluator = Evaluator()
        original = evaluator.exec_action(action, {}, lambda r: store[r], None)
        transformed = evaluator.exec_action(
            sequentialize_action(action), {}, lambda r: store[r], None
        )
        assert original == transformed


class TestCompileRule:
    def test_optimized_rule_needs_no_shadow(self):
        top, a, b, flag1, flag2, fifo = build_test_module()
        rule = top.add_rule("r", par(fifo.call("enq", RegRead(a)), a.write(Const(1))))
        compiled = compile_rule(rule, OptimizationConfig.all())
        assert not compiled.can_fail
        assert compiled.shadow_registers == set()

    def test_naive_rule_shadows_everything_it_writes(self):
        top, a, b, flag1, flag2, fifo = build_test_module()
        design = Design(top)
        rule = top.add_rule("r", par(fifo.call("enq", RegRead(a)), a.write(Const(1))))
        compiled = compile_rule(rule, OptimizationConfig.none(), design.all_registers())
        assert compiled.can_fail
        assert len(compiled.shadow_registers) == len(design.all_registers())

    def test_partial_shadowing_limits_to_write_set(self):
        top, a, b, flag1, flag2, fifo = build_test_module()
        design = Design(top)
        rule = top.add_rule(
            "r", Seq([a.write(Const(1)), WhenA(b.write(Const(2)), RegRead(flag1))])
        )
        compiled = compile_rule(
            rule, OptimizationConfig(lift_guards=True, inline_methods=True, sequentialize=True, partial_shadowing=True),
            design.all_registers(),
        )
        assert compiled.can_fail  # residual guard inside the Seq tail
        assert compiled.shadow_registers == {a, b}

    def test_config_describe(self):
        text = OptimizationConfig.none().describe()
        assert "lift_guards=off" in text
