"""Regenerate tests/golden/fig13_interface.json.

The golden file pins the interface generator's text output -- ``report()``,
the software C header and the hardware BSV arbiter -- for every two-partition
fig13 workload (Vorbis A-F, ray tracer A-D).  The link-granular N-domain
refactor of :mod:`repro.codegen.interface` is required to reproduce these
strings byte-for-byte on the classic two-partition path; the snapshot in the
repository was captured at commit 542eba1 (the last pre-refactor generator).

Only rerun this script if the *semantics* of the two-partition interface
deliberately change; a diff in the regenerated JSON is otherwise a
regression.

Run with:  PYTHONPATH=src python tests/golden/regen_fig13_interface.py
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.apps.raytracer.params import RayTracerParams
from repro.apps.raytracer.partitions import (
    PARTITION_ORDER as RAY_ORDER,
    build_partition as build_ray_partition,
)
from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import (
    PARTITION_ORDER as VORBIS_ORDER,
    build_partition as build_vorbis_partition,
)
from repro.codegen.interface import build_interface_spec, generate_hw_arbiter, generate_sw_header
from repro.core.domains import SW
from repro.core.partition import partition_design

VORBIS_PARAMS = VorbisParams(n_frames=2)
RAY_PARAMS = RayTracerParams(n_triangles=32, image_width=3, image_height=3)


def capture():
    snapshot = {}
    workloads = [(f"vorbis_{l}", build_vorbis_partition, l, VORBIS_PARAMS) for l in VORBIS_ORDER]
    workloads += [(f"raytracer_{l}", build_ray_partition, l, RAY_PARAMS) for l in RAY_ORDER]
    for name, builder, letter, params in workloads:
        workload = builder(letter, params)
        partitioning = partition_design(workload.design, SW)
        spec = build_interface_spec(partitioning)
        snapshot[name] = {
            "report": spec.report(),
            "sw_header": generate_sw_header(spec),
            "hw_arbiter": generate_hw_arbiter(spec),
        }
    return snapshot


def main():
    out = pathlib.Path(__file__).parent / "fig13_interface.json"
    out.write_text(json.dumps(capture(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
