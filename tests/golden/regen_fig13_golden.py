"""Regenerate the fig13 golden CosimResult snapshot.

The snapshot ``fig13_cosim.json`` was captured at commit ``9df8a7b`` --
the last revision with the original two-partition ``Cosimulator`` -- and
is the bit-for-bit reference the N-domain fabric's two-partition
compatibility wrapper is tested against (``tests/test_fabric.py``).

Do NOT regenerate it casually: rerunning this script after a behavioural
change would launder the change through the golden file.  Regenerating is
only legitimate when the *workload definitions* change (new kernels, new
sizes), in which case note the regeneration commit here.

Usage::

    PYTHONPATH=src python tests/golden/regen_fig13_golden.py
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent / "src"))

from repro.apps.raytracer import partitions as rt_partitions
from repro.apps.raytracer.params import RayTracerParams
from repro.apps.vorbis import partitions as vorbis_partitions
from repro.apps.vorbis.params import VorbisParams
from repro.sim.cosim import Cosimulator

#: Reduced fig13 sizes (steady state is reached after a handful of frames;
#: what the golden file pins is the exact cycle/fire/channel accounting).
VORBIS_PARAMS = VorbisParams(n_frames=4)
RAYTRACER_PARAMS = RayTracerParams(n_triangles=24, image_width=3, image_height=3)

#: The CosimResult fields the golden file pins (the pre-refactor field set;
#: fields added later are deliberately not part of the frozen contract).
GOLDEN_FIELDS = (
    "design_name",
    "fpga_cycles",
    "completed",
    "sw_busy_fpga_cycles",
    "sw_cpu_cycles",
    "sw_cpu_cycles_wasted",
    "sw_cpu_cycles_driver",
    "sw_firings",
    "sw_guard_failures",
    "hw_firings",
    "hw_active_cycles",
    "channel_messages",
    "channel_words",
    "channel_busy_cycles",
    "fire_counts",
    "vc_stats",
)


def fig13_workloads():
    for letter in vorbis_partitions.PARTITION_ORDER:
        yield f"vorbis_{letter}", vorbis_partitions.build_partition(letter, VORBIS_PARAMS)
    for letter in rt_partitions.PARTITION_ORDER:
        yield f"raytracer_{letter}", rt_partitions.build_partition(letter, RAYTRACER_PARAMS)


def snapshot(workload, backend: str) -> dict:
    cosim = Cosimulator(workload.design, backend=backend)
    result = cosim.run(workload.cosim_done, max_cycles=500_000_000)
    full = asdict(result)
    entry = {field: full[field] for field in GOLDEN_FIELDS}
    # The committed architectural state, repr'd (values are ints/tuples of
    # ints -- repr round-trips them exactly and keeps the file diffable).
    entry["stores"] = {
        reg.full_name: repr(cosim.read(reg)) for reg in workload.design.all_registers()
    }
    return entry


def main() -> int:
    golden = {}
    for name, workload in fig13_workloads():
        golden[name] = {backend: snapshot(workload, backend) for backend in ("interp", "compiled")}
        print(f"captured {name}")
    out = Path(__file__).resolve().parent / "fig13_cosim.json"
    out.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
