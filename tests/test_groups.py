"""Tests for group-decomposed co-simulation.

Four groups:

* **Partitioning properties** -- ``independent_groups()`` really is a
  partition of the domains and of ``route_pairs()`` (no route crosses a
  group), over every fig13 workload, the multi-domain G/H partitions and
  the multi-group pipelines; register ownership splits the same way.
* **Merge rules** -- ``CosimResult.merge`` implements the documented
  deterministic rules (max clock, ordered sums, disjoint union, collision
  detection), and ``sim/shard.py:merge_results`` is a thin presentation
  wrapper over it.
* **Differential** -- serially scheduled groups (``CosimFabric.run``),
  in-process per-group runs (``run_grouped(processes=1)``) and
  process-parallel per-group runs (``run_grouped(processes=2)``) produce
  bitwise-equal merged ``CosimResult``s, over fig13 + vorbis G/H (one
  group each: the monolithic path) and the ≥2-group pipelines, for both
  rule backends and both transports.
* **Scoping** -- during one group's run the fabric answers reads of other
  groups' registers with reset values, which is what makes group order
  (and process placement) unobservable.
"""

from dataclasses import asdict

import pytest

from repro.apps.vorbis import partitions as vp
from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.reference import expected_checksum
from repro.core.domains import SW
from repro.core.errors import SimulationError
from repro.core.partition import partition_design
from repro.sim.cosim import CosimFabric, CosimResult, Cosimulator
from repro.sim.shard import merge_results, run_grouped

PARAMS = VorbisParams(n_frames=3)


def _vorbis(letter):
    return vp.build_partition(letter, PARAMS)


def _raytracer(letter):
    from repro.apps.raytracer import partitions as rp
    from repro.apps.raytracer.params import RayTracerParams

    return rp.build_partition(
        letter, RayTracerParams(n_triangles=24, image_width=3, image_height=3)
    )


#: (name, builder, args) triples covering one-group and multi-group designs.
WORKLOADS = (
    [(f"vorbis_{l}", vp.build_partition, (l, PARAMS)) for l in vp.PARTITION_ORDER]
    + [
        (f"vorbis_{l}", vp.build_multi_partition, (l, PARAMS))
        for l in vp.MULTI_PARTITION_ORDER
    ]
    + [
        ("vorbis_mg_BC", vp.build_group_partition, ("BC", PARAMS)),
        ("vorbis_mg_BCF", vp.build_group_partition, ("BCF", PARAMS)),
    ]
)


# --------------------------------------------------------------------------
# partitioning properties
# --------------------------------------------------------------------------


class TestGroupPartitionProperties:
    @pytest.mark.parametrize("name,builder,args", WORKLOADS, ids=lambda w: None)
    def test_groups_partition_domains_and_routes(self, name, builder, args):
        """Groups partition the domain set; no route crosses a group."""
        partitioning = partition_design(builder(*args).design, SW)
        groups = partitioning.independent_groups()
        all_domains = [d for g in groups for d in g]
        assert sorted(d.name for d in all_domains) == sorted(
            d.name for d in partitioning.domains
        )
        assert len({d.name for d in all_domains}) == len(all_domains)

        routes = partitioning.route_pairs()
        seen = []
        for gid in range(partitioning.group_count):
            group_routes = partitioning.group_route_pairs(gid)
            for src, dst in group_routes:
                # Intra-group by construction: both endpoints in gid.
                assert partitioning.group_of(src) == gid
                assert partitioning.group_of(dst) == gid
            seen.extend(group_routes)
        assert sorted(seen) == sorted(routes)

    @pytest.mark.parametrize("name,builder,args", WORKLOADS, ids=lambda w: None)
    def test_group_cut_partitions_the_cut(self, name, builder, args):
        partitioning = partition_design(builder(*args).design, SW)
        per_group = [
            partitioning.group_cut(g) for g in range(partitioning.group_count)
        ]
        flattened = [s for group in per_group for s in group]
        assert len(flattened) == len(partitioning.cut)
        assert set(flattened) == set(partitioning.cut)
        for gid, syncs in enumerate(per_group):
            for sync in syncs:
                assert partitioning.group_of(sync.domain_enq) == gid
                assert partitioning.group_of(sync.domain_deq) == gid

    def test_multi_group_domains_helper(self):
        names = sorted(d.name for d in vp.multi_group_domains("BC"))
        assert names == ["HW_P0", "HW_P1", "SW_P0", "SW_P1"]
        fabric = CosimFabric(
            vp.build_group_partition("BC", PARAMS).design, backend="compiled"
        )
        assert sorted(d.name for d in fabric.domains) == names
        # An all-software pipeline still lists its (backfilled) SW domain.
        assert [d.name for d in vp.multi_group_domains("F")] == ["SW_P0"]

    def test_multi_group_counts(self):
        two = partition_design(vp.build_group_partition("BC", PARAMS).design, SW)
        assert two.group_count == 2
        three = partition_design(vp.build_group_partition("BCF", PARAMS).design, SW)
        assert three.group_count == 3
        one = partition_design(_vorbis("B").design, SW)
        assert one.group_count == 1

    def test_group_of_unknown_domain_raises(self):
        partitioning = partition_design(_vorbis("B").design, SW)
        from repro.core.errors import PartitionError

        with pytest.raises(PartitionError):
            partitioning.group_of("NO_SUCH_DOMAIN")

    def test_split_registers_by_group(self):
        workload = vp.build_group_partition("BC", PARAMS)
        partitioning = partition_design(workload.design, SW)
        observed = [pipe.frames_out for pipe in workload.pipes]
        split = partitioning.split_registers_by_group(observed)
        assert sorted(split) == [0, 1]
        groups = {
            gid: {d.name for d in g}
            for gid, g in enumerate(partitioning.independent_groups())
        }
        for gid, regs in split.items():
            assert len(regs) == 1
            # frames_out lives in the pipeline's software-side audio sink.
            pipe_index = 0 if "_p0." in regs[0].full_name else 1
            assert f"SW_P{pipe_index}" in groups[gid]

    def test_register_group_covers_cut_registers(self):
        workload = _vorbis("B")
        partitioning = partition_design(workload.design, SW)
        for sync in partitioning.cut:
            for reg in sync.registers:
                assert partitioning.register_group(reg) == partitioning.group_of(
                    sync.domain_enq
                )


# --------------------------------------------------------------------------
# merge rules
# --------------------------------------------------------------------------


def _result(**overrides):
    base = dict(
        design_name="d",
        fpga_cycles=10.0,
        completed=True,
        sw_busy_fpga_cycles=1.5,
        sw_cpu_cycles=2.5,
        sw_cpu_cycles_wasted=0.5,
        sw_cpu_cycles_driver=0.25,
        sw_firings=3,
        sw_guard_failures=4,
        hw_firings=5,
        hw_active_cycles=6,
        channel_messages=7,
        channel_words=8,
        channel_busy_cycles=9.5,
        fire_counts={"a.r": 1},
        vc_stats={"q": {"messages": 1, "words": 2, "credit_stalls": 0}},
        domain_stats={"SW": {"kind": "sw", "firings": 3}},
    )
    base.update(overrides)
    return CosimResult(**base)


class TestCosimResultMerge:
    def test_merge_rules(self):
        a = _result()
        b = _result(
            fpga_cycles=4.0,
            completed=True,
            fire_counts={"b.r": 2},
            vc_stats={"p": {"messages": 9, "words": 9, "credit_stalls": 1}},
            domain_stats={"HW": {"kind": "hw", "firings": 5}},
        )
        merged = CosimResult.merge([a, b])
        assert merged.fpga_cycles == 10.0  # max over groups
        assert merged.sw_firings == 6  # ordered sums
        assert merged.channel_busy_cycles == 9.5 + 9.5
        assert merged.fire_counts == {"a.r": 1, "b.r": 2}  # disjoint union
        assert set(merged.vc_stats) == {"q", "p"}
        assert set(merged.domain_stats) == {"SW", "HW"}
        assert merged.completed

    def test_merge_completed_is_all(self):
        incomplete = _result(
            completed=False, fire_counts={"b.r": 1}, vc_stats={}, domain_stats={}
        )
        assert not CosimResult.merge([_result(), incomplete]).completed

    def test_strict_merge_rejects_collisions(self):
        with pytest.raises(SimulationError):
            CosimResult.merge([_result(), _result()])

    def test_strict_merge_rejects_mixed_designs(self):
        with pytest.raises(SimulationError):
            CosimResult.merge([_result(), _result(design_name="other")])

    def test_non_strict_merge_sums_collisions(self):
        merged = CosimResult.merge(
            [_result(), _result(design_name="other")], strict=False
        )
        assert merged.design_name == "d+other"
        assert merged.fire_counts == {"a.r": 2}
        assert merged.vc_stats["q"]["messages"] == 2
        assert merged.domain_stats["SW"]["kind"] == "sw"
        assert merged.domain_stats["SW"]["firings"] == 6

    def test_merge_of_one_is_identity(self):
        one = _result()
        assert asdict(CosimResult.merge([one])) == asdict(one)

    def test_merge_of_nothing_raises(self):
        with pytest.raises(ValueError):
            CosimResult.merge([])

    def test_merge_results_wrapper_shape(self):
        rows = {"x": _result(), "y": _result(design_name="other", completed=False)}
        summary = merge_results(rows)
        assert summary == {
            "tasks": 2,
            "completed": 1,
            "fpga_cycles_max": 10.0,
            "fpga_cycles_sum": 20.0,
            "sw_firings": 6,
            "hw_firings": 10,
            "channel_messages": 14,
            "channel_words": 16,
        }
        assert merge_results({})["tasks"] == 0


# --------------------------------------------------------------------------
# differential: monolithic vs. serial-grouped vs. process-grouped
# --------------------------------------------------------------------------

#: Representative slice for the expensive exhaustive matrix (every workload
#: still runs the compiled/compiled cell below).
MATRIX_WORKLOADS = (
    ("vorbis_B", vp.build_partition, ("B", PARAMS)),
    ("vorbis_G", vp.build_multi_partition, ("G", PARAMS)),
    ("vorbis_mg_BC", vp.build_group_partition, ("BC", PARAMS)),
)


def _run_monolithic(builder, args, backend, transport):
    workload = builder(*args)
    fabric = CosimFabric(workload.design, backend=backend, transport=transport)
    result = fabric.run(workload.cosim_done, max_cycles=500_000_000)
    return fabric, workload, result


class TestGroupedDifferential:
    @pytest.mark.parametrize("name,builder,args", WORKLOADS, ids=lambda w: None)
    def test_three_modes_bitwise_equal(self, name, builder, args):
        _, _, mono = _run_monolithic(builder, args, "compiled", None)
        serial = run_grouped(builder, args=args, processes=1)
        procs = run_grouped(builder, args=args, processes=2)
        assert asdict(serial.result) == asdict(mono)
        assert asdict(procs.result) == asdict(serial.result)

    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    @pytest.mark.parametrize("transport", ["interp", "compiled"])
    @pytest.mark.parametrize("name,builder,args", MATRIX_WORKLOADS, ids=lambda w: None)
    def test_backend_transport_matrix(self, name, builder, args, backend, transport):
        _, _, mono = _run_monolithic(builder, args, backend, transport)
        procs = run_grouped(
            builder, args=args, backend=backend, transport=transport, processes=2
        )
        assert asdict(procs.result) == asdict(mono)

    def test_multi_group_equals_sum_of_standalone_pipelines(self):
        """Each group's slice equals the pipeline simulated on its own."""
        workload = vp.build_group_partition("BC", PARAMS)
        fabric = CosimFabric(workload.design, backend="compiled")
        merged = fabric.run(workload.cosim_done, max_cycles=500_000_000)
        assert merged.completed

        reference = expected_checksum(PARAMS)
        assert workload.checksums(fabric.read) == [reference, reference]

        singles = {}
        for letter in "BC":
            single = _vorbis(letter)
            cosim = Cosimulator(single.design, backend="compiled")
            singles[letter] = cosim.run(single.cosim_done, max_cycles=500_000_000)
        # The slow pipeline (C) bounds the merged clock; counters sum.
        assert merged.fpga_cycles == max(s.fpga_cycles for s in singles.values())
        assert merged.sw_firings == sum(s.sw_firings for s in singles.values())
        assert merged.hw_firings == sum(s.hw_firings for s in singles.values())
        assert merged.channel_messages == sum(
            s.channel_messages for s in singles.values()
        )

    def test_lockstep_agrees_on_semantics(self):
        """The legacy scheduler reproduces every semantic field; only its
        idle-cycle bookkeeping (guard scans, credit stalls, global-clock
        quantisation) differs on multi-group designs."""
        wl_a = vp.build_group_partition("BC", PARAMS)
        fab_a = CosimFabric(wl_a.design, backend="compiled")
        grouped = fab_a.run(wl_a.cosim_done, max_cycles=500_000_000)
        wl_b = vp.build_group_partition("BC", PARAMS)
        fab_b = CosimFabric(wl_b.design, backend="compiled")
        lockstep = fab_b.run(
            wl_b.cosim_done, max_cycles=500_000_000, scheduler="lockstep"
        )
        assert lockstep.completed and grouped.completed
        assert lockstep.fire_counts == grouped.fire_counts
        assert lockstep.sw_firings == grouped.sw_firings
        assert lockstep.hw_firings == grouped.hw_firings
        assert lockstep.hw_active_cycles == grouped.hw_active_cycles
        assert lockstep.sw_busy_fpga_cycles == grouped.sw_busy_fpga_cycles
        assert lockstep.sw_cpu_cycles_driver == grouped.sw_cpu_cycles_driver
        assert lockstep.channel_messages == grouped.channel_messages
        assert lockstep.channel_words == grouped.channel_words
        assert lockstep.channel_busy_cycles == grouped.channel_busy_cycles
        assert wl_b.checksums(fab_b.read) == wl_a.checksums(fab_a.read)

    def test_single_group_grouped_equals_lockstep_bitwise(self):
        """With one group the grouped scheduler *is* the historical loop."""
        for backend in ("interp", "compiled"):
            wl_a = _vorbis("B")
            fab_a = Cosimulator(wl_a.design, backend=backend)
            grouped = fab_a.run(wl_a.cosim_done, max_cycles=500_000_000)
            wl_b = _vorbis("B")
            fab_b = Cosimulator(wl_b.design, backend=backend)
            lockstep = fab_b.run(
                wl_b.cosim_done, max_cycles=500_000_000, scheduler="lockstep"
            )
            assert asdict(grouped) == asdict(lockstep)

    def test_raytracer_grouped_modes_agree(self):
        workload = _raytracer("B")
        fabric = CosimFabric(workload.design, backend="compiled")
        mono = fabric.run(workload.cosim_done, max_cycles=500_000_000)
        from repro.apps.raytracer import partitions as rp
        from repro.apps.raytracer.params import RayTracerParams

        report = run_grouped(
            rp.build_partition,
            args=("B", RayTracerParams(n_triangles=24, image_width=3, image_height=3)),
            processes=2,
        )
        assert asdict(report.result) == asdict(mono)

    def test_unknown_scheduler_rejected(self):
        workload = _vorbis("B")
        fabric = CosimFabric(workload.design, backend="compiled")
        with pytest.raises(ValueError):
            fabric.run(workload.cosim_done, scheduler="warp")


def _short_circuit_workload(params):
    """A multi-group workload whose done predicate violates the contract:
    the generator short-circuits, so the reset-state probe only ever sees
    the first pipeline's counter."""
    workload = vp.build_group_partition("BC", params)

    class ShortCircuit:
        design = workload.design
        pipes = workload.pipes

        def cosim_done(self, cosim):
            return all(
                cosim.read(pipe.frames_out) >= params.n_frames
                for pipe in self.pipes
            )

    return ShortCircuit()


# --------------------------------------------------------------------------
# read scoping & observation attribution
# --------------------------------------------------------------------------


class TestGroupScoping:
    def test_probe_records_observed_registers(self):
        workload = vp.build_group_partition("BC", PARAMS)
        fabric = CosimFabric(workload.design, backend="compiled")
        already, observed = fabric.probe_done(workload.cosim_done)
        assert not already
        assert observed == {pipe.frames_out for pipe in workload.pipes}
        assert {fabric.group_of_register(r) for r in observed} == {0, 1}

    def test_out_of_group_reads_resolve_to_reset_values(self):
        """While group 0 runs, group 1's counters read as reset -- so the
        serially scheduled run matches per-process runs bit for bit."""
        workload = vp.build_group_partition("BC", PARAMS)
        fabric = CosimFabric(workload.design, backend="compiled")
        p0, p1 = workload.pipes
        fabric.run_group(0, workload.cosim_done)
        # Group 0 really ran and its counter advanced...
        assert fabric.read(p0.frames_out) == PARAMS.n_frames
        assert fabric.read(p1.frames_out) == 0
        # ...and during a group-1 run, group 0's progress is invisible.
        seen = {}

        def spying_done(cosim):
            seen["p0"] = cosim.read(p0.frames_out)
            return workload.cosim_done(cosim)

        fabric.run_group(1, spying_done)
        assert seen["p0"] == 0  # reset value, not the final 3
        assert fabric.read(p1.frames_out) == PARAMS.n_frames

    def test_group_observations_are_plain_data(self):
        workload = vp.build_group_partition("BC", PARAMS)
        fabric = CosimFabric(workload.design, backend="compiled")
        fabric.run_group(0, workload.cosim_done)
        obs = fabric.group_observations(0)
        (key, value), = obs.items()
        assert key.endswith("audio.frames_out") and "p0" in key
        assert value == PARAMS.n_frames
        # The other group's observed register reports its (unrun) value --
        # a worker only ever reports the group it actually ran.
        (other_key, other_value), = fabric.group_observations(1).items()
        assert "p1" in other_key and other_value == 0

    def test_evaluate_done_with_finals(self):
        workload = vp.build_group_partition("BC", PARAMS)
        fabric = CosimFabric(workload.design, backend="compiled")
        finals = {
            pipe.frames_out.full_name: PARAMS.n_frames for pipe in workload.pipes
        }
        assert fabric.evaluate_done(workload.cosim_done, finals)
        assert not fabric.evaluate_done(workload.cosim_done, {})

    def test_short_circuiting_predicate_fails_loudly(self):
        """A done predicate whose read set is data-dependent (cross-group
        short-circuit) cannot be served by worker-reported finals; the
        grouped runner must refuse rather than report INCOMPLETE."""
        with pytest.raises(SimulationError, match="full register set"):
            run_grouped(
                _short_circuit_workload, args=(PARAMS,), processes=1
            )

    def test_grouped_report_accounting(self):
        report = run_grouped(
            vp.build_group_partition, args=("BC", PARAMS), processes=2
        )
        assert len(report.outcomes) == 2
        assert [o.group_index for o in report.outcomes] == [0, 1]
        assert report.wall_seconds > 0
        assert "groups on" in report.table()
        assert report.result.completed
