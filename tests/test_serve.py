"""Persistent serving: snapshot/reset correctness and the unified pool.

The acceptance oracle of the serving layer: every request served by a
resident :class:`~repro.sim.serve.FabricServer` must be **bitwise
identical** -- ``CosimResult``, outputs and final stores -- to the same
request served by a freshly elaborated fabric (``serve_fresh``), over
fig13, multi-domain and multi-group workloads, both backends, both
transports and both schedulers; randomized request interleavings prove no
state leaks across snapshot resets.
"""

from __future__ import annotations

import random
from dataclasses import asdict

import pytest

from repro.analysis import audit_fabric
from repro.apps.raytracer import partitions as rp
from repro.apps.raytracer.params import RayTracerParams
from repro.apps.vorbis import partitions as vp
from repro.apps.vorbis.params import VorbisParams
from repro.core.errors import SimulationError
from repro.core.partition import default_engine_kind
from repro.sim import pool as pool_mod
from repro.sim.cosim import CosimFabric
from repro.sim.pool import PoolTask, clear_residents, run_pool, run_pool_task
from repro.sim.serve import (
    FabricServer,
    Request,
    RequestResult,
    ServingStats,
    percentile,
    safe_ratio,
    serve_fresh,
)
from repro.sim.shard import GroupedReport, SweepReport, SweepTask, run_sweep

PARAMS = VorbisParams(n_frames=3)
RT_PARAMS = RayTracerParams(n_triangles=24, image_width=3, image_height=3)


def _g_kinds():
    return {d.name: default_engine_kind(d) for d in vp.multi_partition_domains("G")}


#: (id, builder, args, server options, request factory) -- the serving
#: workload matrix: a fig13 two-partition pipeline, a multi-domain cut and
#: a multi-group design.
WORKLOADS = [
    (
        "vorbis_B",
        vp.build_partition,
        ("B", PARAMS),
        {},
        lambda wl, start: wl.frame_request(start),
    ),
    (
        "vorbis_G",
        vp.build_multi_partition,
        ("G", PARAMS),
        {"engine_kinds": _g_kinds()},
        lambda wl, start: wl.frame_request(start),
    ),
    (
        "vorbis_mg_BC",
        vp.build_group_partition,
        ("BC", PARAMS),
        {"fabric_kind": "fabric"},
        lambda wl, start: wl.pipes[start % len(wl.pipes)].frame_request(start % PARAMS.n_frames),
    ),
]


def _assert_bitwise(resident: RequestResult, fresh: RequestResult) -> None:
    assert asdict(resident.result) == asdict(fresh.result)
    assert resident.outputs == fresh.outputs


# --------------------------------------------------------------------------
# resident == fresh, over the full matrix
# --------------------------------------------------------------------------


class TestServeBitwise:
    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    @pytest.mark.parametrize("transport", ["interp", "compiled"])
    @pytest.mark.parametrize(
        "wid,builder,args,opts,make_request", WORKLOADS, ids=lambda w: None
    )
    def test_resident_equals_fresh_matrix(
        self, wid, builder, args, opts, make_request, backend, transport
    ):
        server = FabricServer(
            builder, args, backend=backend, transport=transport, **opts
        )
        for start in (1, 0, 2, 1):
            request = make_request(server.workload, start)
            resident = server.serve(request)
            fresh = serve_fresh(
                builder, request, args, backend=backend, transport=transport, **opts
            )
            _assert_bitwise(resident, fresh)
        assert server.requests_served == 4
        # The structural counterpart of the differential oracle above: the
        # resident fabric's object graph has no state its snapshot misses.
        assert audit_fabric(server.fabric) == []

    @pytest.mark.parametrize(
        "wid,builder,args,opts,make_request", WORKLOADS, ids=lambda w: None
    )
    def test_resident_equals_fresh_source_tier(
        self, wid, builder, args, opts, make_request
    ):
        """The source-lowered leg: generated supersteps and transport pumps
        must survive snapshot/reset exactly like the closure tiers."""
        server = FabricServer(
            builder, args, backend="source", transport="source", **opts
        )
        for start in (1, 0, 2, 1):
            request = make_request(server.workload, start)
            resident = server.serve(request)
            fresh = serve_fresh(
                builder, request, args, backend="source", transport="source", **opts
            )
            _assert_bitwise(resident, fresh)
        assert audit_fabric(server.fabric) == []

    @pytest.mark.parametrize("backend", ["interp", "compiled", "source"])
    def test_lockstep_scheduler(self, backend):
        server = FabricServer(
            vp.build_partition, ("B", PARAMS), backend=backend, scheduler="lockstep"
        )
        for start in (2, 0):
            request = server.workload.frame_request(start)
            resident = server.serve(request)
            fresh = serve_fresh(
                vp.build_partition,
                request,
                ("B", PARAMS),
                backend=backend,
                scheduler="lockstep",
            )
            _assert_bitwise(resident, fresh)

    def test_raytracer_tiles(self):
        server = FabricServer(rp.build_partition, ("B", RT_PARAMS))
        checksums = set()
        for start in (0, 4, 2, 0):
            request = server.workload.tile_request(start)
            resident = server.serve(request)
            fresh = serve_fresh(rp.build_partition, request, ("B", RT_PARAMS))
            _assert_bitwise(resident, fresh)
            checksums.add(resident.outputs[server.workload.checksum.full_name])
        assert len(checksums) == 3  # distinct tiles render distinct checksums

    def test_multigroup_combined_request(self):
        """One request driving both pipelines of a multi-group design."""
        server = FabricServer(
            vp.build_group_partition, ("BC", PARAMS), fabric_kind="fabric"
        )
        p0, p1 = server.workload.pipes
        request = Request(
            name="both-pipes",
            writes={p0.frame_idx.full_name: 1, p1.frame_idx.full_name: 2},
            done_min={
                p0.frames_out.full_name: PARAMS.n_frames - 1,
                p1.frames_out.full_name: PARAMS.n_frames - 2,
            },
            outputs=(p0.checksum.full_name, p1.checksum.full_name),
        )
        resident = server.serve(request)
        fresh = serve_fresh(
            vp.build_group_partition, request, ("BC", PARAMS), fabric_kind="fabric"
        )
        _assert_bitwise(resident, fresh)
        assert resident.result.completed

    def test_empty_done_min_uses_workload_predicate(self):
        server = FabricServer(vp.build_partition, ("B", PARAMS))
        # An empty request is exactly the workload's own full run.
        served = server.serve(Request(name="full-run"))
        assert served.result.fpga_cycles > 0
        assert served.result.completed


# --------------------------------------------------------------------------
# snapshot completeness / reset semantics
# --------------------------------------------------------------------------


def _store_image(fabric: CosimFabric):
    """Engine stores keyed by domain and register full name (plain data)."""
    return {
        dom.name: {reg.full_name: value for reg, value in fabric.engines[dom].store.items()}
        for dom in fabric.domains
    }


class TestSnapshotReset:
    def test_restore_returns_fabric_to_reset(self):
        server = FabricServer(vp.build_partition, ("B", PARAMS))
        fabric = server.fabric
        reset_image = _store_image(fabric)
        server.serve(server.workload.frame_request(1))
        assert _store_image(fabric) == reset_image
        assert fabric.now == 0.0
        assert all(group.now == 0.0 for group in fabric._groups)
        for direction in fabric.topology.directions:
            assert direction.pool.pending == 0
            assert direction.stats.messages == 0
            assert direction.busy_until == 0.0
        for vc in fabric.vcs:
            assert vc.in_flight == 0
            assert vc.stats.messages_sent == 0

    def test_served_result_is_per_request_delta(self):
        """Counters restart from zero each request: N-th serve == first serve."""
        server = FabricServer(vp.build_partition, ("B", PARAMS))
        request = server.workload.frame_request(0)
        first = server.serve(request)
        again = server.serve(request)
        assert asdict(first.result) == asdict(again.result)

    def test_final_stores_match_fresh_elaboration(self):
        """Not just the result: the full end-of-run stores agree bitwise."""
        request = vp.build_partition("B", PARAMS).frame_request(1)

        def final_stores(server):
            fabric = server.fabric
            try:
                for name in sorted(request.writes):
                    fabric.write(server.register(name), request.writes[name])
                fabric.run(server._done_for(request), max_cycles=5e8)
                return _store_image(fabric)
            finally:
                server.reset()

        resident = FabricServer(vp.build_partition, ("B", PARAMS))
        resident.serve(request)  # dirty the fabric once first
        assert final_stores(resident) == final_stores(
            FabricServer(vp.build_partition, ("B", PARAMS))
        )

    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    def test_randomized_interleaving_no_state_leaks(self, backend):
        """A seeded random request stream matches per-start fresh oracles."""
        rng = random.Random(0xC051)
        server = FabricServer(vp.build_partition, ("B", PARAMS), backend=backend)
        oracle = {}
        for _ in range(10):
            start = rng.randrange(PARAMS.n_frames)
            request = server.workload.frame_request(start)
            resident = server.serve(request)
            if start not in oracle:
                oracle[start] = serve_fresh(
                    vp.build_partition, request, ("B", PARAMS), backend=backend
                )
            _assert_bitwise(resident, oracle[start])

    def test_failed_request_does_not_poison_the_server(self):
        server = FabricServer(vp.build_partition, ("B", PARAMS))
        request = server.workload.frame_request(0)
        with pytest.raises(SimulationError):
            server.serve(
                Request(
                    name="too-tight",
                    writes=dict(request.writes),
                    done_min=dict(request.done_min),
                    max_cycles=0.5,
                )
            )
        resident = server.serve(request)
        fresh = serve_fresh(vp.build_partition, request, ("B", PARAMS))
        _assert_bitwise(resident, fresh)

    def test_incomplete_request_reports_incomplete(self):
        server = FabricServer(vp.build_partition, ("B", PARAMS))
        wl = server.workload
        unreachable = Request(
            name="unreachable",
            done_min={wl.frames_out.full_name: PARAMS.n_frames + 1},
        )
        assert not server.serve(unreachable).result.completed
        # ...and the server still serves normal traffic bitwise afterwards.
        request = wl.frame_request(2)
        _assert_bitwise(
            server.serve(request), serve_fresh(vp.build_partition, request, ("B", PARAMS))
        )


# --------------------------------------------------------------------------
# request validation
# --------------------------------------------------------------------------


class TestRequestValidation:
    def test_unknown_register_name(self):
        server = FabricServer(vp.build_partition, ("B", PARAMS))
        with pytest.raises(KeyError, match="no register"):
            server.serve(Request(name="bad", writes={"nope.reg": 1}))

    def test_unknown_fabric_kind(self):
        with pytest.raises(ValueError, match="fabric_kind"):
            FabricServer(vp.build_partition, ("B", PARAMS), fabric_kind="warp")

    def test_frame_request_range(self):
        wl = vp.build_partition("B", PARAMS)
        with pytest.raises(ValueError):
            wl.frame_request(PARAMS.n_frames)
        with pytest.raises(ValueError):
            wl.frame_request(-1)

    def test_tile_request_range(self):
        wl = rp.build_partition("A", RT_PARAMS)
        with pytest.raises(ValueError):
            wl.tile_request(RT_PARAMS.n_rays)

    def test_pool_task_kind_validation(self):
        with pytest.raises(ValueError, match="kind"):
            PoolTask(name="x", builder=vp.build_partition, kind="warp")
        with pytest.raises(ValueError, match="request"):
            PoolTask(name="x", builder=vp.build_partition, kind="request")


# --------------------------------------------------------------------------
# the unified pool
# --------------------------------------------------------------------------


def _request_task(name, start, processes_safe=True):
    wl = vp.build_partition("B", PARAMS)
    return PoolTask(
        name=name,
        builder=vp.build_partition,
        args=("B", PARAMS),
        kind="request",
        request=wl.frame_request(start),
    )


def _failing_builder(*_args, **_kwargs):
    raise RuntimeError("builder exploded")


class TestPool:
    def setup_method(self):
        clear_residents()

    def test_mixed_kinds_share_one_submission_path(self):
        tasks = [
            PoolTask(name="sweep", builder=vp.build_partition, args=("B", PARAMS)),
            _request_task("req", 1),
            PoolTask(
                name="group0",
                builder=vp.build_group_partition,
                args=("BC", PARAMS),
                kind="group",
                group_index=0,
                fabric_kind="fabric",
            ),
        ]
        outcomes, processes = run_pool(tasks, processes=1)
        assert processes == 1
        assert [o.name for o in outcomes] == ["sweep", "req", "group0"]
        assert outcomes[0].outputs is None and outcomes[0].observations is None
        assert outcomes[1].outputs  # request outputs present
        assert outcomes[2].observations  # group finals present

    def test_worker_elaboration_cache(self):
        task = PoolTask(name="a", builder=vp.build_partition, args=("B", PARAMS))
        first = run_pool_task(task)
        second = run_pool_task(
            PoolTask(name="b", builder=vp.build_partition, args=("B", PARAMS))
        )
        assert first.elaborated and not second.elaborated
        assert asdict(first.result) == asdict(second.result)

    def test_cache_distinguishes_builder_specs(self):
        run_pool_task(PoolTask(name="a", builder=vp.build_partition, args=("B", PARAMS)))
        other = run_pool_task(
            PoolTask(name="b", builder=vp.build_partition, args=("F", PARAMS))
        )
        assert other.elaborated  # different spec, different resident

    def test_resident_limit_eviction(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_RESIDENTS", "1")
        run_pool_task(PoolTask(name="a", builder=vp.build_partition, args=("B", PARAMS)))
        run_pool_task(PoolTask(name="b", builder=vp.build_partition, args=("F", PARAMS)))
        assert len(pool_mod._RESIDENT) == 1
        # The evicted spec re-elaborates.
        again = run_pool_task(
            PoolTask(name="c", builder=vp.build_partition, args=("B", PARAMS))
        )
        assert again.elaborated

    def test_parallel_requests_match_serial(self):
        tasks = [_request_task(f"r{i}", i % PARAMS.n_frames) for i in range(4)]
        serial, _ = run_pool(list(tasks), processes=1)
        parallel, _ = run_pool(list(tasks), processes=2)
        for a, b in zip(serial, parallel):
            assert asdict(a.result) == asdict(b.result)
            assert a.outputs == b.outputs

    def test_pool_error_propagates(self):
        tasks = [
            PoolTask(name="ok", builder=vp.build_partition, args=("B", PARAMS)),
            PoolTask(name="boom", builder=_failing_builder),
        ]
        with pytest.raises(RuntimeError, match="builder exploded"):
            run_pool(list(tasks), processes=1)
        with pytest.raises((RuntimeError, SimulationError)):
            run_pool(list(tasks), processes=2)

    def test_sweep_rides_the_pool_cache(self):
        """Repeated sweep points of one design elaborate once per worker."""
        tasks = [
            SweepTask(name=f"p{i}", builder=vp.build_partition, args=("B", PARAMS))
            for i in range(3)
        ]
        report = run_sweep(tasks, processes=1)
        assert report.elaborations == 1
        results = list(report.results.values())
        assert asdict(results[0]) == asdict(results[1]) == asdict(results[2])


# --------------------------------------------------------------------------
# zero-duration guards and latency roll-ups
# --------------------------------------------------------------------------


class TestReportGuards:
    def test_safe_ratio(self):
        assert safe_ratio(4.0, 2.0) == 2.0
        assert safe_ratio(4.0, 0.0) == 0.0
        assert safe_ratio(4.0, 0.0, default=1.0) == 1.0
        assert safe_ratio(4.0, -1.0) == 0.0

    def test_sweep_speedup_zero_wall(self):
        report = SweepReport(outcomes={}, wall_seconds=0.0, processes=1)
        assert report.speedup == 1.0

    def test_grouped_speedup_zero_wall(self):
        merged = run_pool_task(
            PoolTask(name="x", builder=vp.build_partition, args=("B", PARAMS))
        ).result
        report = GroupedReport(
            result=merged, outcomes=[], wall_seconds=0.0, processes=1
        )
        assert report.speedup == 1.0

    def test_serving_stats_zero_duration(self):
        stats = ServingStats(
            requests=0, wall_seconds=0.0, elaborate_seconds=0.0, latencies=[]
        )
        assert stats.requests_per_second == 0.0
        assert stats.p50_seconds == 0.0 and stats.p99_seconds == 0.0
        row = stats.row()
        assert row["requests_per_second"] == 0.0

    def test_percentiles(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile(values, 100) == 4.0
        assert percentile([], 50) == 0.0

    def test_serving_stats_of_results(self):
        server = FabricServer(vp.build_partition, ("B", PARAMS))
        results = server.serve_many(
            [server.workload.frame_request(s) for s in (0, 1, 2)]
        )
        wall = sum(r.wall_seconds for r in results)
        stats = ServingStats.of(results, wall, server.elaborate_seconds)
        assert stats.requests == 3
        assert stats.requests_per_second > 0
        assert 0 < stats.p50_seconds <= stats.p99_seconds
