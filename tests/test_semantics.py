"""Tests for the kernel operational semantics (Section 5) and the reference simulator."""

import pytest

from repro.core.action import IfA, LetA, LocalGuard, Loop, NoAction, Par, RegWrite, Seq, WhenA, par, seq
from repro.core.errors import DoubleWriteError, GuardFail, SimulationError
from repro.core.expr import BinOp, Const, KernelCall, LetE, Mux, RegRead, UnOp, Var, WhenE
from repro.core.interpreter import Simulator
from repro.core.module import Design, Module
from repro.core.primitives import Fifo
from repro.core.semantics import Evaluator, commit, try_rule
from repro.core.types import BoolT, UIntT


@pytest.fixture
def design():
    top = Module("top")
    a = top.add_register("a", UIntT(32), 1)
    b = top.add_register("b", UIntT(32), 2)
    flag = top.add_register("flag", BoolT(), False)
    return top, a, b, flag


def run_action(action, store):
    evaluator = Evaluator()
    return evaluator.exec_action(action, {}, lambda reg: store[reg], None)


class TestBasicActions:
    def test_reg_write(self, design):
        top, a, b, flag = design
        store = {a: 1, b: 2, flag: False}
        updates = run_action(a.write(Const(5)), store)
        assert updates == {a: 5}

    def test_no_action(self, design):
        top, a, b, flag = design
        assert run_action(NoAction(), {a: 1}) == {}

    def test_parallel_swap(self, design):
        """a := b | b := a swaps the registers (both see the initial state)."""
        top, a, b, flag = design
        store = {a: 1, b: 2}
        updates = run_action(Par([a.write(RegRead(b)), b.write(RegRead(a))]), store)
        assert updates == {a: 2, b: 1}

    def test_sequential_composition_sees_updates(self, design):
        top, a, b, flag = design
        store = {a: 1, b: 2}
        updates = run_action(Seq([a.write(Const(10)), b.write(RegRead(a))]), store)
        assert updates == {a: 10, b: 10}

    def test_parallel_double_write_is_error(self, design):
        top, a, b, flag = design
        store = {a: 1, b: 2}
        with pytest.raises(DoubleWriteError):
            run_action(Par([a.write(Const(1)), a.write(Const(2))]), store)

    def test_conditional_action_local_effect(self, design):
        top, a, b, flag = design
        store = {a: 1, b: 2, flag: False}
        updates = run_action(IfA(RegRead(flag), a.write(Const(9))), store)
        assert updates == {}
        store[flag] = True
        updates = run_action(IfA(RegRead(flag), a.write(Const(9))), store)
        assert updates == {a: 9}

    def test_if_else(self, design):
        top, a, b, flag = design
        store = {a: 1, b: 2, flag: False}
        action = IfA(RegRead(flag), a.write(Const(1)), a.write(Const(2)))
        assert run_action(action, store) == {a: 2}

    def test_guarded_action_global_effect(self, design):
        """A false when-guard invalidates the whole atomic action."""
        top, a, b, flag = design
        store = {a: 1, b: 2, flag: False}
        action = Par([a.write(Const(5)), WhenA(b.write(Const(6)), RegRead(flag))])
        with pytest.raises(GuardFail):
            run_action(action, store)

    def test_local_guard_converts_failure_to_noop(self, design):
        top, a, b, flag = design
        store = {a: 1, b: 2, flag: False}
        action = Par(
            [a.write(Const(5)), LocalGuard(WhenA(b.write(Const(6)), RegRead(flag)))]
        )
        assert run_action(action, store) == {a: 5}

    def test_let_action_binding(self, design):
        top, a, b, flag = design
        store = {a: 3, b: 2}
        action = LetA("x", BinOp("+", RegRead(a), Const(4)), b.write(Var("x")))
        assert run_action(action, store) == {b: 7}

    def test_let_is_non_strict(self, design):
        """A spurious binding with a failing guard has no effect if unused."""
        top, a, b, flag = design
        store = {a: 1, b: 2, flag: False}
        action = LetA("unused", WhenE(Const(1), RegRead(flag)), a.write(Const(5)))
        assert run_action(action, store) == {a: 5}

    def test_loop_action(self, design):
        top, a, b, flag = design
        store = {a: 0, b: 2}
        action = Loop(BinOp("<", RegRead(a), Const(5)), a.write(BinOp("+", RegRead(a), Const(1))))
        assert run_action(action, store) == {a: 5}

    def test_loop_bound_enforced(self, design):
        top, a, b, flag = design
        store = {a: 0}
        action = Loop(Const(True), a.write(RegRead(a)), max_iterations=10)
        with pytest.raises(SimulationError):
            run_action(action, store)


class TestExpressions:
    def test_mux_evaluates_selected_arm_only(self, design):
        top, a, b, flag = design
        store = {a: 1, b: 2, flag: True}
        # The unselected arm has a failing guard; it must not matter.
        expr = Mux(RegRead(flag), Const(10), WhenE(Const(20), Const(False)))
        evaluator = Evaluator()
        assert evaluator.eval_expr(expr, {}, lambda r: store[r], None) == 10

    def test_short_circuit_and(self, design):
        top, a, b, flag = design
        store = {flag: False}
        expr = BinOp("&&", RegRead(flag), WhenE(Const(True), Const(False)))
        evaluator = Evaluator()
        assert evaluator.eval_expr(expr, {}, lambda r: store[r], None) is False

    def test_let_expression(self):
        evaluator = Evaluator()
        expr = LetE("x", Const(3), BinOp("*", Var("x"), Var("x")))
        assert evaluator.eval_expr(expr, {}, lambda r: 0, None) == 9

    def test_unary_ops(self):
        evaluator = Evaluator()
        assert evaluator.eval_expr(UnOp("!", Const(False)), {}, lambda r: 0, None) is True
        assert evaluator.eval_expr(UnOp("-", Const(3)), {}, lambda r: 0, None) == -3

    def test_kernel_call(self):
        evaluator = Evaluator()
        expr = KernelCall("add", lambda x, y: x + y, [Const(2), Const(3)], 10, 1)
        assert evaluator.eval_expr(expr, {}, lambda r: 0, None) == 5

    def test_kernel_cost_annotations(self):
        kc = KernelCall("k", lambda x: x, [Const(1)], sw_cycles=lambda x: 10 * x, hw_cycles=3)
        assert kc.cost("sw", [4]) == 40
        assert kc.cost("hw", [4]) == 3


class TestRulesAndSimulator:
    def test_try_rule_guard_failure_is_noop(self, design):
        top, a, b, flag = design
        store = {a: 1, b: 2, flag: False}
        rule = top.add_rule("r", a.write(Const(9)).when(RegRead(flag)))
        outcome = try_rule(rule, store)
        assert not outcome.fired and outcome.updates == {}

    def test_try_rule_and_commit(self, design):
        top, a, b, flag = design
        store = {a: 1, b: 2, flag: True}
        rule = top.add_rule("r", a.write(Const(9)).when(RegRead(flag)))
        outcome = try_rule(rule, store)
        assert outcome.fired
        commit(store, outcome.updates)
        assert store[a] == 9

    def test_fifo_pipeline_end_to_end(self):
        top = Module("top")
        fifo = top.add_submodule(Fifo("q", UIntT(32), depth=2))
        cnt = top.add_register("cnt", UIntT(32), 0)
        total = top.add_register("total", UIntT(32), 0)
        top.add_rule(
            "produce",
            par(fifo.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
            .when(BinOp("<", RegRead(cnt), Const(5))),
        )
        top.add_rule(
            "consume",
            par(total.write(BinOp("+", RegRead(total), fifo.value("first"))), fifo.call("deq")),
        )
        sim = Simulator(Design(top))
        sim.run(1000)
        assert sim.read(total) == sum(range(5))
        assert sim.read(cnt) == 5

    @pytest.mark.parametrize("policy", ["round-robin", "priority", "random"])
    def test_all_scheduling_policies_reach_same_final_state(self, policy):
        top = Module("top")
        fifo = top.add_submodule(Fifo("q", UIntT(32), depth=2))
        cnt = top.add_register("cnt", UIntT(32), 0)
        total = top.add_register("total", UIntT(32), 0)
        top.add_rule(
            "produce",
            par(fifo.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
            .when(BinOp("<", RegRead(cnt), Const(8))),
        )
        top.add_rule(
            "consume",
            par(total.write(BinOp("+", RegRead(total), fifo.value("first"))), fifo.call("deq")),
        )
        sim = Simulator(Design(top), policy=policy, seed=42)
        sim.run(1000)
        assert sim.read(total) == sum(range(8))

    def test_simulator_quiescence(self, design):
        top, a, b, flag = design
        top.add_rule("never", a.write(Const(1)).when(Const(False)))
        sim = Simulator(Design(top))
        assert sim.run(100) == 0
        assert sim.guard_failures > 0

    def test_run_until_predicate(self):
        top = Module("top")
        cnt = top.add_register("cnt", UIntT(32), 0)
        top.add_rule("tick", cnt.write(BinOp("+", RegRead(cnt), Const(1))))
        sim = Simulator(Design(top))
        fired = sim.run_until(lambda s: s.read(cnt) >= 10)
        assert fired == 10

    def test_run_until_raises_on_quiescence(self, design):
        top, a, b, flag = design
        top.add_rule("never", a.write(Const(1)).when(Const(False)))
        sim = Simulator(Design(top))
        from repro.core.errors import SchedulingError

        with pytest.raises(SchedulingError):
            sim.run_until(lambda s: False, max_steps=10)
