"""Seeded-defect corpus for the static design verifier.

One deliberately broken design per diagnostic code: each builder returns a
minimal elaborated :class:`~repro.core.module.Design` whose only defect is
the one its code names, so ``verify_design`` must fire **exactly** that
code on it (pinned by ``tests/test_analysis_verifier.py``).  The fabric
builders at the bottom seed the two snapshot-audit defects on a live
two-domain co-simulator.

These are the negative controls of the lint gate: the clean-pass test
proves the verifier accepts every shipped workload, this corpus proves it
is actually *looking*.
"""

import random

from repro.core.action import par
from repro.core.domains import HW, SW
from repro.core.expr import FALSE, BinOp, Const, KernelCall, RegRead
from repro.core.module import Design, Module
from repro.core.synchronizers import SyncFifo
from repro.core.types import UIntT


def build_foreign_read() -> Design:
    """REPRO-E001: a software rule reads hardware-owned state directly."""
    top = Module("foreign_read")
    hw_mod = top.add_submodule(Module("hw", domain=HW))
    sw_mod = top.add_submodule(Module("sw", domain=SW))
    secret = hw_mod.add_register("secret", UIntT(32), 7)
    mirror = sw_mod.add_register("mirror", UIntT(32), 0)
    sw_mod.add_rule("peek", mirror.write(RegRead(secret)))
    return Design(top)


def build_write_race() -> Design:
    """REPRO-E002: two domains write one register with no synchronizer.

    The register's module carries no domain annotation and each rule is
    explicitly domain-annotated, so per-rule inference succeeds -- the
    defect only exists at the whole-design level the race check sees.
    """
    top = Module("write_race")
    shared = top.add_register("shared", UIntT(32), 0)
    top.add_rule("hw_store", shared.write(Const(1)), domain=HW)
    top.add_rule("sw_store", shared.write(Const(2)), domain=SW)
    return Design(top)


def build_credit_cycle() -> Design:
    """REPRO-E003: two channels whose drains atomically require each other.

    ``bounce`` (HW) drains ping while filling pong; ``echo`` (SW) drains
    pong while filling ping.  Both credit windows are finite, and the
    ``inject`` rule fills ping without draining anything, so the windows
    can fill and then neither coupled rule can ever fire again.
    """
    top = Module("credit_cycle")
    sw_mod = top.add_submodule(Module("sw", domain=SW))
    ping = top.add_submodule(SyncFifo("ping", UIntT(32), SW, HW, depth=2))
    pong = top.add_submodule(SyncFifo("pong", UIntT(32), HW, SW, depth=2))
    cnt = sw_mod.add_register("cnt", UIntT(32), 0)
    top.add_rule(
        "inject",
        par(
            ping.call("enq", RegRead(cnt)),
            cnt.write(BinOp("+", RegRead(cnt), Const(1))),
        ).when(BinOp("<", RegRead(cnt), Const(8))),
    )
    top.add_rule("bounce", par(pong.call("enq", ping.value("first")), ping.call("deq")))
    top.add_rule("echo", par(ping.call("enq", pong.value("first")), pong.call("deq")))
    return Design(top)


def build_const_false_guard() -> Design:
    """REPRO-W004: a guard the optimiser folds to constant false."""
    top = Module("const_false")
    out = top.add_register("out", UIntT(32), 0)
    top.add_rule("never", out.write(Const(1)).when(FALSE))
    return Design(top)


def build_frozen_guard() -> Design:
    """REPRO-W005: a rejecting guard whose support no rule ever writes.

    ``flag`` is read by ``frozen``'s guard but written by nothing, so the
    dirty-set wakeup index would put the rule to sleep forever after its
    first rejection.  ``tick`` keeps the design's write set non-empty (the
    check must test disjointness, not emptiness).
    """
    top = Module("frozen_guard")
    flag = top.add_register("flag", UIntT(1), 0)
    acc = top.add_register("acc", UIntT(32), 0)
    cnt = top.add_register("cnt", UIntT(32), 0)
    top.add_rule("frozen", acc.write(Const(1)).when(RegRead(flag)))
    top.add_rule("tick", cnt.write(BinOp("+", RegRead(cnt), Const(1))))
    return Design(top)


_SCRATCH = []


def _leaky_kernel(x):
    _SCRATCH.append(x)
    return (x + 1) & 0xFFFFFFFF


def build_mutating_kernel() -> Design:
    """REPRO-E006: a foreign kernel mutates state outside its arguments."""
    top = Module("mutating_kernel")
    src = top.add_register("src", UIntT(32), 3)
    out = top.add_register("out", UIntT(32), 0)
    top.add_rule(
        "apply",
        out.write(KernelCall("leaky", _leaky_kernel, [RegRead(src)])),
    )
    return Design(top)


def _noisy_kernel(x):
    return (x + int(random.random() * 4)) & 0xFFFFFFFF


def build_nondeterministic_kernel() -> Design:
    """REPRO-E007: a foreign kernel draws on a nondeterminism source."""
    top = Module("nondet_kernel")
    src = top.add_register("src", UIntT(32), 3)
    out = top.add_register("out", UIntT(32), 0)
    top.add_rule(
        "apply",
        out.write(KernelCall("noisy", _noisy_kernel, [RegRead(src)])),
    )
    return Design(top)


#: code -> builder of a design whose ONLY defect is that code.
DESIGN_FIXTURES = {
    "REPRO-E001": build_foreign_read,
    "REPRO-E002": build_write_race,
    "REPRO-E003": build_credit_cycle,
    "REPRO-W004": build_const_false_guard,
    "REPRO-W005": build_frozen_guard,
    "REPRO-E006": build_mutating_kernel,
    "REPRO-E007": build_nondeterministic_kernel,
}


# -- live-fabric fixtures for the snapshot audit ------------------------------


def _clean_two_domain_fabric():
    from repro.sim.cosim import Cosimulator

    top = Module("audit_probe")
    producer = top.add_submodule(Module("producer", domain=SW))
    consumer = top.add_submodule(Module("consumer", domain=HW))
    q = top.add_submodule(SyncFifo("q", UIntT(32), SW, HW, depth=2))
    cnt = producer.add_register("cnt", UIntT(32), 0)
    acc = consumer.add_register("acc", UIntT(32), 0)
    producer.add_rule(
        "produce",
        par(
            q.call("enq", RegRead(cnt)),
            cnt.write(BinOp("+", RegRead(cnt), Const(1))),
        ).when(BinOp("<", RegRead(cnt), Const(4))),
    )
    consumer.add_rule(
        "consume",
        par(acc.write(BinOp("+", RegRead(acc), q.value("first"))), q.call("deq")),
    )
    return Cosimulator(Design(top))


def build_snapshot_gap_fabric():
    """REPRO-E008: a mutable engine field snapshot() knows nothing about."""
    sim = _clean_two_domain_fabric()
    sim.sw._forgotten_counter = 0
    return sim


def build_snapshot_arity_drift_fabric():
    """REPRO-E009: an engine snapshot that dropped a field (mis-zips restore)."""
    sim = _clean_two_domain_fabric()
    original = sim.sw.snapshot
    sim.sw.snapshot = lambda: original()[:-1]
    return sim
