"""Tests for the three compiler outputs: C++ (SW), BSV/Verilog (HW), interface glue."""

import pytest

from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import build_partition
from repro.codegen.bsv import generate_hw_partition, generate_rule as generate_bsv_rule
from repro.codegen.cxx import generate_rule as generate_cxx_rule, generate_sw_partition
from repro.codegen.interface import build_interface_spec, generate_hw_arbiter, generate_sw_header
from repro.codegen.verilog import generate_verilog
from repro.core.action import Loop, Seq, par
from repro.core.domains import HW, SW
from repro.core.errors import ElaborationError
from repro.core.expr import BinOp, Const, RegRead
from repro.core.module import Design, Module
from repro.core.optimize import OptimizationConfig, compile_rule
from repro.core.partition import partition_design
from repro.core.primitives import Fifo
from repro.core.types import UIntT

PARAMS = VorbisParams(n_frames=2)


@pytest.fixture
def simple_design():
    top = Module("top")
    fifo = top.add_submodule(Fifo("q", UIntT(32), depth=2))
    cnt = top.add_register("cnt", UIntT(32), 0)
    out = top.add_register("out", UIntT(32), 0)
    produce = top.add_rule(
        "produce",
        par(fifo.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
        .when(BinOp("<", RegRead(cnt), Const(8))),
    )
    consume = top.add_rule("consume", par(out.write(fifo.value("first")), fifo.call("deq")))
    return Design(top, "simple"), produce, consume


class TestCxxGeneration:
    def test_figure9_naive_rule_uses_try_catch_and_shadows(self, simple_design):
        design, produce, consume = simple_design
        compiled = compile_rule(produce, OptimizationConfig.none(), design.all_registers())
        code = generate_cxx_rule(compiled)
        assert "try {" in code
        assert "catch (GuardFailure&)" in code
        assert ".shadow()" in code
        assert "rollback" in code

    def test_figure10_optimised_rule_has_no_try_catch(self, simple_design):
        design, produce, consume = simple_design
        compiled = compile_rule(produce, OptimizationConfig.all(), design.all_registers())
        code = generate_cxx_rule(compiled)
        assert "try {" not in code
        assert "lifted guard" in code
        assert ".shadow()" not in code

    def test_guard_lifting_without_inlining_keeps_try_catch(self, simple_design):
        design, produce, consume = simple_design
        config = OptimizationConfig(lift_guards=True, inline_methods=False)
        compiled = compile_rule(produce, config, design.all_registers())
        code = generate_cxx_rule(compiled)
        assert "lifted guard" in code

    def test_whole_partition_translation_unit(self, simple_design):
        design, *_ = simple_design
        code = generate_sw_partition(design)
        assert "run_scheduler" in code
        assert "bool produce()" in code
        assert "bool consume()" in code
        assert "class top" in code

    def test_sw_partition_of_partitioned_design(self):
        backend = build_partition("B", PARAMS)
        partitioning = partition_design(backend.design, SW)
        code = generate_sw_partition(backend.design, partitioning.program(SW))
        assert "window_overlap" in code
        assert "ifft_stage0" not in code  # the IFFT rules are in the HW partition


class TestBsvGeneration:
    def test_rule_has_lifted_guard_condition(self, simple_design):
        design, produce, consume = simple_design
        code = generate_bsv_rule(produce)
        assert code.startswith("rule produce (")
        assert "endrule" in code
        assert "notFull" in code  # hoisted FIFO readiness

    def test_loops_rejected(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        rule = top.add_rule("looping", Loop(Const(True), a.write(Const(1))))
        with pytest.raises(ElaborationError):
            generate_bsv_rule(rule)

    def test_sequential_composition_rejected(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        rule = top.add_rule("seqrule", Seq([a.write(Const(1)), a.write(Const(2))]))
        with pytest.raises(ElaborationError):
            generate_bsv_rule(rule)

    def test_hw_partition_module(self):
        backend = build_partition("A", PARAMS)
        partitioning = partition_design(backend.design, SW)
        code = generate_hw_partition(backend.design, partitioning.program(HW))
        assert "ifft_stage0" in code and "ifft_stage2" in code
        assert "endmodule" in code
        assert "window_overlap" not in code

    def test_verilog_skeleton(self, simple_design):
        design, *_ = simple_design
        code = generate_verilog(design)
        assert "module simple_hw" in code
        assert "will_fire_produce" in code
        assert "always @(posedge clk)" in code


class TestInterfaceGeneration:
    @pytest.fixture
    def spec(self):
        backend = build_partition("A", PARAMS)
        partitioning = partition_design(backend.design, SW)
        return build_interface_spec(partitioning)

    def test_channels_cover_the_cut(self, spec):
        assert spec.n_channels == 2
        assert {ch.name for ch in spec.channels} == {"q_pre", "q_ifft"}

    def test_vc_ids_unique(self, spec):
        ids = [ch.vc_id for ch in spec.channels]
        assert len(set(ids)) == len(ids)

    def test_payload_sizes_from_types(self, spec):
        by_name = {ch.name: ch for ch in spec.channels}
        assert by_name["q_pre"].payload_words == 128
        assert by_name["q_pre"].message_words == 129

    def test_sw_header_contents(self, spec):
        header = generate_sw_header(spec)
        assert "#define BCL_NUM_VIRTUAL_CHANNELS 2" in header
        assert "BCL_VC_Q_PRE" in header
        assert "bcl_send_q_pre" in header  # SW -> HW direction
        assert "bcl_recv_q_ifft" in header  # HW -> SW direction

    def test_hw_arbiter_contents(self, spec):
        arbiter = generate_hw_arbiter(spec)
        assert "mkHwSwInterface" in arbiter
        assert "arbitrate_q_ifft" in arbiter

    def test_report_mentions_direction(self, spec):
        report = spec.report()
        assert "SW->HW" in report and "HW->SW" in report

    def test_empty_cut_for_full_sw(self):
        backend = build_partition("F", PARAMS)
        partitioning = partition_design(backend.design, SW)
        spec = build_interface_spec(partitioning)
        assert spec.n_channels == 0
