"""Tests for the three compiler outputs: C++ (SW), BSV/Verilog (HW), interface glue."""

import json
import pathlib
import re
import shutil
import subprocess

import pytest

from repro.apps.raytracer.params import RayTracerParams
from repro.apps.raytracer.partitions import (
    PARTITION_ORDER as RAY_PARTITION_ORDER,
    build_partition as build_ray_partition,
)
from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import (
    MULTI_PARTITION_ORDER,
    PARTITION_ORDER,
    build_multi_partition,
    build_partition,
)
from repro.codegen.bsv import generate_hw_partition, generate_rule as generate_bsv_rule
from repro.codegen.cxx import generate_rule as generate_cxx_rule, generate_sw_partition
from repro.codegen.interface import (
    ChannelSpec,
    InterfaceSpec,
    LinkSpec,
    build_interface_spec,
    generate_hw_arbiter,
    generate_sw_header,
    generate_sw_marshal_source,
    generate_transactors,
)
from repro.codegen.verilog import generate_verilog
from repro.core.action import Loop, Seq, par
from repro.core.domains import HW, SW, Domain
from repro.core.errors import CodegenError, ElaborationError
from repro.core.expr import BinOp, Const, RegRead
from repro.core.module import Design, Module
from repro.core.optimize import OptimizationConfig, compile_rule
from repro.core.partition import partition_design
from repro.core.primitives import Fifo
from repro.core.types import UIntT
from repro.platform.channel import ChannelParams

PARAMS = VorbisParams(n_frames=2)
GOLDEN_INTERFACE = pathlib.Path(__file__).parent / "golden" / "fig13_interface.json"


@pytest.fixture
def simple_design():
    top = Module("top")
    fifo = top.add_submodule(Fifo("q", UIntT(32), depth=2))
    cnt = top.add_register("cnt", UIntT(32), 0)
    out = top.add_register("out", UIntT(32), 0)
    produce = top.add_rule(
        "produce",
        par(fifo.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
        .when(BinOp("<", RegRead(cnt), Const(8))),
    )
    consume = top.add_rule("consume", par(out.write(fifo.value("first")), fifo.call("deq")))
    return Design(top, "simple"), produce, consume


class TestCxxGeneration:
    def test_figure9_naive_rule_uses_try_catch_and_shadows(self, simple_design):
        design, produce, consume = simple_design
        compiled = compile_rule(produce, OptimizationConfig.none(), design.all_registers())
        code = generate_cxx_rule(compiled)
        assert "try {" in code
        assert "catch (GuardFailure&)" in code
        assert ".shadow()" in code
        assert "rollback" in code

    def test_figure10_optimised_rule_has_no_try_catch(self, simple_design):
        design, produce, consume = simple_design
        compiled = compile_rule(produce, OptimizationConfig.all(), design.all_registers())
        code = generate_cxx_rule(compiled)
        assert "try {" not in code
        assert "lifted guard" in code
        assert ".shadow()" not in code

    def test_guard_lifting_without_inlining_keeps_try_catch(self, simple_design):
        design, produce, consume = simple_design
        config = OptimizationConfig(lift_guards=True, inline_methods=False)
        compiled = compile_rule(produce, config, design.all_registers())
        code = generate_cxx_rule(compiled)
        assert "lifted guard" in code

    def test_whole_partition_translation_unit(self, simple_design):
        design, *_ = simple_design
        code = generate_sw_partition(design)
        assert "run_scheduler" in code
        assert "bool produce()" in code
        assert "bool consume()" in code
        assert "class top" in code

    def test_sw_partition_of_partitioned_design(self):
        backend = build_partition("B", PARAMS)
        partitioning = partition_design(backend.design, SW)
        code = generate_sw_partition(backend.design, partitioning.program(SW))
        assert "window_overlap" in code
        assert "ifft_stage0" not in code  # the IFFT rules are in the HW partition


class TestBsvGeneration:
    def test_rule_has_lifted_guard_condition(self, simple_design):
        design, produce, consume = simple_design
        code = generate_bsv_rule(produce)
        assert code.startswith("rule produce (")
        assert "endrule" in code
        assert "notFull" in code  # hoisted FIFO readiness

    def test_loops_rejected(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        rule = top.add_rule("looping", Loop(Const(True), a.write(Const(1))))
        with pytest.raises(ElaborationError):
            generate_bsv_rule(rule)

    def test_sequential_composition_rejected(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        rule = top.add_rule("seqrule", Seq([a.write(Const(1)), a.write(Const(2))]))
        with pytest.raises(ElaborationError):
            generate_bsv_rule(rule)

    def test_hw_partition_module(self):
        backend = build_partition("A", PARAMS)
        partitioning = partition_design(backend.design, SW)
        code = generate_hw_partition(backend.design, partitioning.program(HW))
        assert "ifft_stage0" in code and "ifft_stage2" in code
        assert "endmodule" in code
        assert "window_overlap" not in code

    def test_verilog_skeleton(self, simple_design):
        design, *_ = simple_design
        code = generate_verilog(design)
        assert "module simple_hw" in code
        assert "will_fire_produce" in code
        assert "always @(posedge clk)" in code


class TestInterfaceGeneration:
    @pytest.fixture
    def spec(self):
        backend = build_partition("A", PARAMS)
        partitioning = partition_design(backend.design, SW)
        return build_interface_spec(partitioning)

    def test_channels_cover_the_cut(self, spec):
        assert spec.n_channels == 2
        assert {ch.name for ch in spec.channels} == {"q_pre", "q_ifft"}

    def test_vc_ids_unique(self, spec):
        ids = [ch.vc_id for ch in spec.channels]
        assert len(set(ids)) == len(ids)

    def test_payload_sizes_from_types(self, spec):
        by_name = {ch.name: ch for ch in spec.channels}
        assert by_name["q_pre"].payload_words == 128
        assert by_name["q_pre"].message_words == 129

    def test_sw_header_contents(self, spec):
        header = generate_sw_header(spec)
        assert "#define BCL_NUM_VIRTUAL_CHANNELS 2" in header
        assert "BCL_VC_Q_PRE" in header
        assert "bcl_send_q_pre" in header  # SW -> HW direction
        assert "bcl_recv_q_ifft" in header  # HW -> SW direction

    def test_hw_arbiter_contents(self, spec):
        arbiter = generate_hw_arbiter(spec)
        assert "mkHwSwInterface" in arbiter
        assert "arbitrate_q_ifft" in arbiter

    def test_report_mentions_direction(self, spec):
        report = spec.report()
        assert "SW->HW" in report and "HW->SW" in report

    def test_empty_cut_for_full_sw(self):
        backend = build_partition("F", PARAMS)
        partitioning = partition_design(backend.design, SW)
        spec = build_interface_spec(partitioning)
        assert spec.n_channels == 0

    def test_links_follow_route_pairs(self, spec):
        backend = build_partition("A", PARAMS)
        partitioning = partition_design(backend.design, SW)
        assert [(l.producer, l.consumer) for l in spec.links] == partitioning.route_pairs()

    def test_engine_kind_classification(self, spec):
        assert spec.hw_domains == ["HW"]
        assert spec.sw_domains == ["SW"]


def _declared_identifiers(code: str):
    """Every identifier bound by a generated BSV declaration."""
    return re.findall(r"(\w+) <- mk(?:Reg|SizedFIFO)", code)


class TestGoldenTwoPartitionParity:
    """The route-keyed generator renders the classic two-partition interface
    byte-identically to the pre-refactor generator (pinned at commit 542eba1;
    see tests/golden/regen_fig13_interface.py)."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_INTERFACE.read_text())

    @pytest.mark.parametrize("letter", PARTITION_ORDER)
    def test_vorbis_partitions_byte_identical(self, golden, letter):
        backend = build_partition(letter, PARAMS)
        partitioning = partition_design(backend.design, SW)
        spec = build_interface_spec(partitioning)
        pinned = golden[f"vorbis_{letter}"]
        assert spec.report() == pinned["report"]
        assert generate_sw_header(spec) == pinned["sw_header"]
        assert generate_hw_arbiter(spec) == pinned["hw_arbiter"]

    @pytest.mark.parametrize("letter", RAY_PARTITION_ORDER)
    def test_raytracer_partitions_byte_identical(self, golden, letter):
        tracer = build_ray_partition(
            letter, RayTracerParams(n_triangles=32, image_width=3, image_height=3)
        )
        partitioning = partition_design(tracer.design, SW)
        spec = build_interface_spec(partitioning)
        pinned = golden[f"raytracer_{letter}"]
        assert spec.report() == pinned["report"]
        assert generate_sw_header(spec) == pinned["sw_header"]
        assert generate_hw_arbiter(spec) == pinned["hw_arbiter"]


class TestMultiDomainInterface:
    """Link-granular codegen over the N-domain Vorbis partitions (G, H)."""

    @pytest.fixture(scope="class", params=MULTI_PARTITION_ORDER)
    def partitioned(self, request):
        backend = build_multi_partition(request.param, PARAMS)
        partitioning = partition_design(backend.design, SW)
        return request.param, partitioning, build_interface_spec(partitioning)

    def test_one_link_per_route_pair(self, partitioned):
        letter, partitioning, spec = partitioned
        assert [(l.producer, l.consumer) for l in spec.links] == partitioning.route_pairs()

    def test_per_link_vc_numbering_starts_at_zero(self, partitioned):
        _, _, spec = partitioned
        for link in spec.links:
            assert [ch.link_vc for ch in link.channels] == list(range(link.n_channels))

    def test_wire_vc_ids_stay_global_and_unique(self, partitioned):
        _, _, spec = partitioned
        ids = [ch.vc_id for ch in spec.channels]
        assert ids == list(range(len(ids)))

    def test_one_transactor_pair_per_route(self, partitioned):
        letter, partitioning, spec = partitioned
        pairs = spec.transactor_pairs()
        assert len(pairs) == len(partitioning.route_pairs())
        names = [n for pair in pairs.values() for n in pair]
        assert len(set(names)) == len(names), f"vorbis_{letter} transactor names collide"

    def test_transactor_set_renders_for_every_link(self, partitioned):
        _, _, spec = partitioned
        rendered = generate_transactors(spec)
        assert list(rendered) == [l.name for l in spec.links]
        for link in spec.links:
            tx, rx = rendered[link.name]["tx"], rendered[link.name]["rx"]
            for ch in link.channels:
                assert ch.name in tx and ch.name in rx
            # The endpoint's language follows the engine kind of its domain.
            assert ("module mk" in tx) == spec.is_hw(link.producer)
            assert ("module mk" in rx) == spec.is_hw(link.consumer)

    def test_per_domain_headers_cover_touched_links_only(self, partitioned):
        _, _, spec = partitioned
        for dom in spec.sw_domains:
            header = generate_sw_header(spec, dom)
            for ch in spec.channels:
                sends = f"bcl_send_{ch.name}" in header
                recvs = f"bcl_recv_{ch.name}" in header
                assert sends == (ch.producer == dom)
                assert recvs == (ch.consumer == dom)

    def test_per_domain_arbiters_cover_every_hw_domain(self, partitioned):
        letter, _, spec = partitioned
        module_names = set()
        for dom in spec.hw_domains:
            arbiter = generate_hw_arbiter(spec, dom)
            module_names.add(arbiter.splitlines()[4])
            for link in spec.links_from(dom):
                for ch in link.channels:
                    assert f"rule arbitrate_{ch.name};" in arbiter
            for link in spec.links_to(dom):
                for ch in link.channels:
                    assert f"{ch.name}_in <- mkSizedFIFO" in arbiter
        # Arbiter modules of different hardware domains must be able to coexist.
        assert len(module_names) == len(spec.hw_domains)

    def test_every_channel_lands_on_exactly_one_link(self, partitioned):
        _, _, spec = partitioned
        placed = [ch.name for link in spec.links for ch in link.channels]
        assert sorted(placed) == sorted(ch.name for ch in spec.channels)

    def test_hw_partitions_declare_endpoints_and_are_collision_free(self, partitioned):
        letter, partitioning, spec = partitioned
        for dom in partitioning.domains:
            if dom.name not in spec.hw_domains:
                continue
            code = generate_hw_partition(
                partitioning.design, spec=spec, partitioning=partitioning, domain=dom
            )
            idents = _declared_identifiers(code)
            assert len(set(idents)) == len(idents), f"duplicate identifiers in {dom.name}"
            program = partitioning.program(dom)
            for sync in program.produces_to:
                assert f"// out-endpoint {sync.name}: link" in code
            for sync in program.consumes_from:
                assert f"// in-endpoint {sync.name}: link" in code

    def test_sw_partition_documents_link_granular_endpoints(self, partitioned):
        _, partitioning, spec = partitioned
        sw_dom = next(d for d in partitioning.domains if d.name == "SW")
        code = generate_sw_partition(
            partitioning.design, spec=spec, partitioning=partitioning, domain=sw_dom
        )
        program = partitioning.program(sw_dom)
        for sync in program.produces_to:
            assert f"bcl_send_{sync.name}: link" in code
        for sync in program.consumes_from:
            assert f"bcl_recv_{sync.name}: link" in code

    def test_link_params_override_width(self, partitioned):
        letter, partitioning, spec = partitioned
        route = partitioning.route_pairs()[0]
        wide = ChannelParams(word_bits=64)
        respec = build_interface_spec(partitioning, link_params={route: wide})
        link = respec.link(*route)
        assert link.word_bits == 64
        for ch in link.channels:
            assert ch.word_bits == 64
            # Wider words halve the 32-bit payload word count.
            narrow = spec.link(*route).channels[ch.link_vc]
            assert ch.payload_words <= narrow.payload_words
        header = generate_sw_header(respec, "SW")
        if any(ch.producer == "SW" or ch.consumer == "SW" for ch in link.channels):
            assert "_WORD_BITS 64" in header


def _spec_with_channels(channels, hw_domains=("HW",), sw_domains=("SW",)):
    links = {}
    for ch in channels:
        links.setdefault((ch.producer, ch.consumer), []).append(ch)
    return InterfaceSpec(
        design_name="synthetic",
        channels=list(channels),
        links=[
            LinkSpec(producer=src, consumer=dst, channels=chs)
            for (src, dst), chs in links.items()
        ],
        hw_domains=list(hw_domains),
        sw_domains=list(sw_domains),
    )


def _channel(vc_id, name, producer="SW", consumer="HW", link_vc=0):
    return ChannelSpec(
        vc_id=vc_id,
        name=name,
        producer=producer,
        consumer=consumer,
        element_type="UInt#(32)",
        payload_words=1,
        message_words=2,
        depth=2,
        link_vc=link_vc,
    )


class TestIdentifierSanitization:
    def test_case_colliding_macros_are_rejected(self):
        spec = _spec_with_channels([_channel(0, "data"), _channel(1, "DATA", link_vc=1)])
        with pytest.raises(CodegenError, match="collides"):
            generate_sw_header(spec)

    def test_non_identifier_characters_are_sanitized(self):
        spec = _spec_with_channels([_channel(0, "q-pre.1")])
        header = generate_sw_header(spec)
        assert "#define BCL_VC_Q_PRE_1 0" in header
        assert "bcl_send_q_pre_1" in header

    def test_sanitization_collisions_are_rejected(self):
        spec = _spec_with_channels([_channel(0, "q.x"), _channel(1, "q-x", link_vc=1)])
        with pytest.raises(CodegenError, match="collides"):
            generate_sw_header(spec)

    def test_arbiter_detects_collisions_too(self):
        spec = _spec_with_channels(
            [
                _channel(0, "out.q", producer="HW", consumer="SW"),
                _channel(1, "out-q", producer="HW", consumer="SW", link_vc=1),
            ]
        )
        with pytest.raises(CodegenError, match="collides"):
            generate_hw_arbiter(spec)

    def test_ambiguous_domain_requires_explicit_choice(self):
        spec = _spec_with_channels(
            [_channel(0, "a", producer="HW_X", consumer="HW_Y")],
            hw_domains=("HW_X", "HW_Y"),
        )
        with pytest.raises(CodegenError, match="explicitly"):
            generate_hw_arbiter(spec)
        assert "mkHwXInterface" in generate_hw_arbiter(spec, "HW_X")

    def test_wrong_kind_domain_is_rejected(self):
        spec = _spec_with_channels([_channel(0, "a")])
        with pytest.raises(CodegenError, match="not a sw domain"):
            generate_sw_header(spec, "HW")


class TestBsvNameQualification:
    @pytest.fixture
    def colliding_design(self):
        top = Module("top")
        stage_a = top.add_submodule(Module("stage_a"))
        stage_b = top.add_submodule(Module("stage_b"))
        cnt_a = stage_a.add_register("cnt", UIntT(32), 0)
        cnt_b = stage_b.add_register("cnt", UIntT(32), 0)
        stage_a.add_rule(
            "tick_a",
            cnt_a.write(BinOp("+", RegRead(cnt_a), Const(1)))
            .when(BinOp("<", RegRead(cnt_a), Const(4))),
        )
        stage_b.add_rule(
            "tick_b",
            cnt_b.write(BinOp("+", RegRead(cnt_b), Const(2)))
            .when(BinOp("<", RegRead(cnt_b), Const(4))),
        )
        return Design(top, "collide")

    def test_duplicate_registers_are_qualified_by_module(self, colliding_design):
        code = generate_hw_partition(colliding_design)
        idents = _declared_identifiers(code)
        assert len(set(idents)) == len(idents)
        assert "stage_a_cnt" in idents and "stage_b_cnt" in idents

    def test_rule_bodies_use_the_qualified_names(self, colliding_design):
        code = generate_hw_partition(colliding_design)
        assert "stage_a_cnt <= (stage_a_cnt + 1);" in code
        assert "stage_b_cnt <= (stage_b_cnt + 2);" in code
        # The bare name must not survive anywhere a register is referenced.
        assert not re.search(r"(?<![a-z_])cnt(?![a-z_])", code)

    def test_unique_registers_keep_their_bare_names(self, simple_design):
        design, *_ = simple_design
        code = generate_hw_partition(design)
        assert re.search(r"Reg#\(.*\) cnt <- mkReg", code)

    def test_endpoint_fifo_colliding_with_register_is_qualified(self):
        """A cut synchronizer and a register sharing a name must not emit two
        declarations of one identifier (nor be conflated in rule bodies)."""
        from repro.core.synchronizers import SyncFifo

        top = Module("top")
        producer = top.add_submodule(Module("producer", domain=SW))
        consumer = top.add_submodule(Module("consumer", domain=HW))
        sync = top.add_submodule(SyncFifo("x_q", UIntT(32), SW, HW, depth=2))
        cnt = producer.add_register("cnt", UIntT(32), 0)
        x_q = consumer.add_register("x_q", UIntT(32), 0)
        producer.add_rule(
            "produce",
            par(sync.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
            .when(BinOp("<", RegRead(cnt), Const(2))),
        )
        consumer.add_rule("consume", par(x_q.write(sync.value("first")), sync.call("deq")))
        design = Design(top, "shadowed")
        partitioning = partition_design(design, SW)
        spec = build_interface_spec(partitioning)
        code = generate_hw_partition(design, spec=spec, partitioning=partitioning, domain=HW)
        idents = _declared_identifiers(code)
        assert len(set(idents)) == len(idents)
        # Register and endpoint both qualified apart; the rule references the register's name.
        assert "consumer_x_q" in idents
        assert "consumer_x_q <= " in code

    def test_num_virtual_channels_bounds_the_wire_ids(self):
        """The table-size macro covers the global wire vc-id space, so every
        BCL_VC_* defined in a per-domain header indexes in bounds."""
        backend = build_multi_partition("H", PARAMS)
        partitioning = partition_design(backend.design, SW)
        spec = build_interface_spec(partitioning)
        header = generate_sw_header(spec, "SW")
        n_total = spec.n_channels
        assert f"#define BCL_NUM_VIRTUAL_CHANNELS {n_total}" in header
        assert "#define BCL_NUM_LOCAL_CHANNELS 2" in header
        for line in header.splitlines():
            m = re.fullmatch(r"#define BCL_VC_(\w+) (\d+)", line)
            if m and not m.group(1).endswith(("_PAYLOAD_WORDS", "_DEPTH", "_WORD_BITS")):
                assert int(m.group(2)) < n_total

    def test_wide_link_prototypes_use_matching_word_type(self):
        """payload_words counts link words, so the C buffer type must match
        the link width (uint32_t[16] for a 1024-bit message would be half-sized)."""
        backend = build_multi_partition("G", PARAMS)
        partitioning = partition_design(backend.design, SW)
        route = partitioning.route_pairs()[0]  # SW -> HW_IMDCT
        spec = build_interface_spec(
            partitioning, link_params={route: ChannelParams(word_bits=64)}
        )
        header = generate_sw_header(spec, "SW")
        ch = spec.link(*route).channels[0]
        assert f"int bcl_send_{ch.name}(const uint64_t payload[{ch.payload_words}]);" in header
        tx = generate_transactors(spec)[spec.link(*route).name]["tx"]
        assert "uint64_t" in tx

    @pytest.mark.parametrize("letter", MULTI_PARTITION_ORDER)
    def test_vorbis_multidomain_partitions_have_no_duplicate_identifiers(self, letter):
        backend = build_multi_partition(letter, PARAMS)
        partitioning = partition_design(backend.design, SW)
        spec = build_interface_spec(partitioning)
        for dom in partitioning.domains:
            if dom.name not in spec.hw_domains:
                continue
            code = generate_hw_partition(
                backend.design, spec=spec, partitioning=partitioning, domain=dom
            )
            idents = _declared_identifiers(code)
            assert len(set(idents)) == len(idents), (letter, dom.name)


class TestMarshalingCodegen:
    """The generated interfaces carry real marshaling loops, rendered from
    the same MessageLayout the simulator's dataplane packs with."""

    @pytest.fixture(scope="class")
    def spec(self):
        backend = build_partition("A", PARAMS)
        partitioning = partition_design(backend.design, SW)
        return build_interface_spec(partitioning)

    def test_marshal_source_implements_every_declared_helper(self, spec):
        header = generate_sw_header(spec)
        source = generate_sw_marshal_source(spec)
        for line in header.splitlines():
            m = re.match(r"int (bcl_(?:send|recv)_\w+)\(", line)
            if m:
                assert f"int {m.group(1)}(" in source, f"{m.group(1)} not implemented"

    def test_pack_functions_embed_the_simulators_header_word(self, spec):
        from repro.platform.marshal import wire_header

        source = generate_sw_marshal_source(spec)
        for ch in spec.channels:
            hexval = f"0x{wire_header(ch.vc_id, ch.payload_words):08X}u"
            assert hexval in source, f"{ch.name}: header constant missing or wrong"

    def test_marshal_source_renders_real_loops_not_stubs(self, spec):
        source = generate_sw_marshal_source(spec)
        assert "for (unsigned i = 0;" in source
        assert "msg[1u + i] = payload[i];" in source
        assert "return -1;" in source  # header validation on the receive path

    def test_field_position_macros_come_from_the_layout(self, spec):
        from repro.platform.marshal import layout_for

        source = generate_sw_marshal_source(spec)
        ch = spec.channels[0]  # q_pre: Vector#(64, Complex#(FixPt#(8,24)))
        layout = layout_for(ch.ty, ch.word_bits)
        for leaf in layout.fields:
            stem = f"BCL_{ch.macro.upper()}_{leaf.path.replace('[*]', '').strip('.').upper()}"
            assert f"#define {stem}_LSB {leaf.bit_offset}" in source
            assert f"#define {stem}_BITS {leaf.bit_width}" in source
            if leaf.count > 1:
                assert f"#define {stem}_STRIDE {leaf.stride}" in source

    def test_hw_transactors_render_marshal_and_dispatch_rules(self):
        backend = build_multi_partition("H", PARAMS)
        partitioning = partition_design(backend.design, SW)
        spec = build_interface_spec(partitioning)
        rendered = generate_transactors(spec)
        for link in spec.links:
            if spec.is_hw(link.producer):
                tx = rendered[link.name]["tx"]
                for ch in link.channels:
                    assert f"rule marshal_{ch.macro}_header" in tx
                    assert f"rule marshal_{ch.macro}_word" in tx
                    assert f"{ch.word_bits}'h{ch.vc_id << 16 | ch.payload_words:X}" in tx
            if spec.is_hw(link.consumer):
                rx = rendered[link.name]["rx"]
                assert "rule demarshal_header" in rx
                for ch in link.channels:
                    assert f"rule dispatch_{ch.macro} (rx_valid && rx_vc == {ch.vc_id}" in rx

    def test_multi_channel_tx_emits_round_robin_arbiter(self):
        """Several channels on one link get an explicit grant-passing arbiter."""
        backend = build_ray_partition(
            "B", RayTracerParams(n_triangles=24, image_width=3, image_height=3)
        )
        partitioning = partition_design(backend.design, SW)
        spec = build_interface_spec(partitioning)
        rendered = generate_transactors(spec)
        checked = 0
        for link in spec.links:
            if not (spec.is_hw(link.producer) and link.n_channels > 1):
                continue
            tx = rendered[link.name]["tx"]
            checked += 1
            assert "Reg#(Bit#" in tx and "tx_grant <- mkReg(0);" in tx
            # FIFOF endpoints: the yield rule needs notEmpty.
            assert "import FIFOF::*;" in tx and "mkSizedFIFOF" in tx
            for slot, ch in enumerate(link.channels):
                next_slot = (slot + 1) % link.n_channels
                # The header rule fires only while holding the grant...
                assert (
                    f"rule marshal_{ch.macro}_header (tx_grant == {slot} "
                    f"&& {ch.macro}_mleft == 0);" in tx
                )
                # ...the grant passes with the message's last payload word...
                assert (
                    f"if ({ch.macro}_mleft == 1) tx_grant <= {next_slot};" in tx
                )
                # ...and an idle granted channel yields its turn.
                assert (
                    f"rule yield_{ch.macro} (tx_grant == {slot} && "
                    f"{ch.macro}_mleft == 0 && !{ch.macro}_out.notEmpty);" in tx
                )
        assert checked >= 1, "raytracer B should have a multi-channel hw link"

    def test_single_channel_tx_has_no_arbiter(self):
        """A link with one channel needs no arbitration: no grant register."""
        backend = build_multi_partition("H", PARAMS)
        partitioning = partition_design(backend.design, SW)
        spec = build_interface_spec(partitioning)
        rendered = generate_transactors(spec)
        checked = 0
        for link in spec.links:
            if spec.is_hw(link.producer) and link.n_channels == 1:
                tx = rendered[link.name]["tx"]
                checked += 1
                assert "tx_grant" not in tx and "rule yield_" not in tx
                assert "import FIFO::*;" in tx and "mkSizedFIFO(" in tx
        assert checked >= 1

    def test_sw_transactors_are_self_contained_implementations(self, spec):
        rendered = generate_transactors(spec)
        for link in spec.links:
            if not spec.is_hw(link.producer):
                tx = rendered[link.name]["tx"]
                assert "static inline int" in tx and "_write_words(" in tx
            if not spec.is_hw(link.consumer):
                rx = rendered[link.name]["rx"]
                assert "static inline int" in rx and "_read_words(" in rx

    def test_narrow_link_params_fail_at_spec_build_time(self):
        from repro.core.errors import WireFormatError

        backend = build_partition("A", PARAMS)
        partitioning = partition_design(backend.design, SW)
        route = partitioning.route_pairs()[0]
        with pytest.raises(WireFormatError):
            build_interface_spec(
                partitioning, link_params={route: ChannelParams(word_bits=16)}
            )

    @pytest.mark.skipif(
        shutil.which("cc") is None and shutil.which("gcc") is None,
        reason="no C compiler on PATH",
    )
    @pytest.mark.parametrize("letter", ["A", "B"])
    def test_generated_c_passes_a_real_compiler_syntax_check(self, letter, tmp_path):
        """`cc -fsyntax-only` accepts the generated header, marshal source
        and every software-side transactor -- the Interface Only artifacts
        are compilable as-is."""
        cc = shutil.which("cc") or shutil.which("gcc")
        backend = build_partition(letter, PARAMS)
        partitioning = partition_design(backend.design, SW)
        spec = build_interface_spec(partitioning)
        artifacts = {
            "interface.h": generate_sw_header(spec),
            "marshal.c": generate_sw_marshal_source(spec),
        }
        rendered = generate_transactors(spec)
        for link in spec.links:
            if not spec.is_hw(link.producer):
                artifacts[f"{link.tx_name}.h"] = rendered[link.name]["tx"]
            if not spec.is_hw(link.consumer):
                artifacts[f"{link.rx_name}.h"] = rendered[link.name]["rx"]
        for name, text in artifacts.items():
            path = tmp_path / name
            path.write_text(text)
            proc = subprocess.run(
                [cc, "-fsyntax-only", "-x", "c", str(path)], capture_output=True, text=True
            )
            assert proc.returncode == 0, f"{name}: {proc.stderr}"
