"""Tests for the bit-accurate type system and the marshaling layer (Section 2.3 / 4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError, TypeCheckError
from repro.core.fixedpoint import FixComplex, FixedPoint
from repro.core.types import (
    BitT,
    BoolT,
    ComplexT,
    FixPtT,
    IntT,
    OpaqueT,
    StructT,
    UIntT,
    VectorT,
    words_for,
)
from repro.platform import marshal


class TestScalarTypes:
    def test_bool_pack_unpack(self):
        t = BoolT()
        assert t.bit_width() == 1
        assert t.unpack(t.pack(True)) is True
        assert t.unpack(t.pack(False)) is False

    def test_bool_rejects_non_bool(self):
        with pytest.raises(TypeCheckError):
            BoolT().pack(1)

    @pytest.mark.parametrize("width", [1, 8, 16, 32, 64])
    def test_uint_roundtrip(self, width):
        t = UIntT(width)
        value = (1 << width) - 1
        assert t.unpack(t.pack(value)) == value
        assert t.unpack(t.pack(0)) == 0

    def test_uint_out_of_range(self):
        with pytest.raises(TypeCheckError):
            UIntT(8).pack(256)
        with pytest.raises(TypeCheckError):
            UIntT(8).pack(-1)

    @pytest.mark.parametrize("value", [-128, -1, 0, 1, 127])
    def test_int_roundtrip(self, value):
        t = IntT(8)
        assert t.unpack(t.pack(value)) == value

    def test_int_out_of_range(self):
        with pytest.raises(TypeCheckError):
            IntT(8).pack(128)

    def test_bit_type(self):
        t = BitT(12)
        assert t.bit_width() == 12
        assert t.unpack(t.pack(0xABC)) == 0xABC

    def test_fixpt_roundtrip(self):
        t = FixPtT(8, 24)
        x = FixedPoint.from_float(-1.375)
        assert t.unpack(t.pack(x)) == x
        assert t.bit_width() == 32

    def test_fixpt_format_mismatch(self):
        t = FixPtT(8, 24)
        with pytest.raises(TypeCheckError):
            t.pack(FixedPoint.from_float(1.0, 16, 16))

    def test_complex_roundtrip(self):
        t = ComplexT(FixPtT(8, 24))
        c = FixComplex.from_floats(0.5, -0.25)
        assert t.unpack(t.pack(c)) == c
        assert t.bit_width() == 64

    def test_defaults(self):
        assert BoolT().default() is False
        assert UIntT(8).default() == 0
        assert FixPtT().default() == FixedPoint.zero()


class TestCompositeTypes:
    def test_vector_roundtrip(self):
        t = VectorT(4, UIntT(8))
        value = (1, 2, 3, 255)
        assert t.unpack(t.pack(value)) == value
        assert t.bit_width() == 32

    def test_vector_wrong_length(self):
        with pytest.raises(TypeCheckError):
            VectorT(4, UIntT(8)).pack((1, 2, 3))

    def test_vector_of_complex(self):
        t = VectorT(3, ComplexT(FixPtT(8, 24)))
        value = tuple(FixComplex.from_floats(i * 0.5, -i) for i in range(3))
        assert t.unpack(t.pack(value)) == value

    def test_struct_roundtrip(self):
        t = StructT("Pair", [("a", UIntT(8)), ("b", IntT(8))])
        value = {"a": 200, "b": -5}
        assert t.unpack(t.pack(value)) == value

    def test_struct_missing_field(self):
        t = StructT("Pair", [("a", UIntT(8)), ("b", IntT(8))])
        with pytest.raises(TypeCheckError):
            t.pack({"a": 1})

    def test_struct_duplicate_fields_rejected(self):
        with pytest.raises(TypeCheckError):
            StructT("Bad", [("a", UIntT(8)), ("a", UIntT(8))])

    def test_nested_struct(self):
        vec3 = StructT("Vec3", [("x", FixPtT(16, 16)), ("y", FixPtT(16, 16)), ("z", FixPtT(16, 16))])
        tri = StructT("Tri", [("v0", vec3), ("v1", vec3), ("v2", vec3)])
        value = {
            name: {axis: FixedPoint.from_float(i + 0.5, 16, 16) for i, axis in enumerate("xyz")}
            for name in ("v0", "v1", "v2")
        }
        assert tri.unpack(tri.pack(value)) == value
        assert tri.bit_width() == 9 * 32

    def test_struct_field_type_lookup(self):
        t = StructT("Pair", [("a", UIntT(8)), ("b", IntT(8))])
        assert t.field_type("a") == UIntT(8)
        with pytest.raises(TypeCheckError):
            t.field_type("c")

    def test_words_for(self):
        assert words_for(UIntT(32)) == 1
        assert words_for(UIntT(33)) == 2
        assert words_for(VectorT(64, ComplexT(FixPtT(8, 24)))) == 128

    def test_opaque_type_refuses_packing(self):
        t = OpaqueT(default=())
        assert t.default() == ()
        with pytest.raises(TypeCheckError):
            t.pack(())
        with pytest.raises(TypeCheckError):
            t.bit_width()

    def test_type_equality_and_hash(self):
        assert VectorT(4, UIntT(8)) == VectorT(4, UIntT(8))
        assert hash(VectorT(4, UIntT(8))) == hash(VectorT(4, UIntT(8)))
        assert VectorT(4, UIntT(8)) != VectorT(5, UIntT(8))


class TestMarshaling:
    def test_marshal_value_roundtrip(self):
        t = VectorT(8, UIntT(32))
        value = tuple(range(8))
        words = marshal.marshal_value(t, value)
        assert len(words) == 8
        assert marshal.demarshal_value(t, words) == value

    def test_frame_and_unframe(self):
        framed = marshal.frame_message(3, [10, 20, 30])
        vc, payload = marshal.unframe_message(framed)
        assert vc == 3
        assert payload == [10, 20, 30]

    def test_marshal_message_roundtrip(self):
        t = StructT("Hit", [("hit", BoolT()), ("t", FixPtT(16, 16)), ("tri", UIntT(32))])
        value = {"hit": True, "t": FixedPoint.from_float(2.5, 16, 16), "tri": 7}
        words = marshal.marshal_message(5, t, value)
        vc, decoded = marshal.demarshal_message(t, words)
        assert vc == 5
        assert decoded == value

    def test_message_words_includes_header(self):
        t = VectorT(64, ComplexT(FixPtT(8, 24)))
        assert marshal.message_words(t) == 129

    def test_bad_vc_id_rejected(self):
        with pytest.raises(SimulationError):
            marshal.frame_message(300, [1])

    def test_length_mismatch_detected(self):
        framed = marshal.frame_message(1, [1, 2, 3])
        with pytest.raises(SimulationError):
            marshal.unframe_message(framed[:-1])

    def test_demarshal_word_count_checked(self):
        with pytest.raises(SimulationError):
            marshal.demarshal_value(UIntT(32), [1, 2])

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_vector_marshal_roundtrip_property(self, values):
        t = VectorT(len(values), UIntT(32))
        words = marshal.marshal_value(t, tuple(values))
        assert marshal.demarshal_value(t, words) == tuple(values)

    @given(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.booleans(),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_struct_marshal_roundtrip_property(self, t_value, shade, hit, tri):
        hit_t = StructT(
            "Hit",
            [
                ("hit", BoolT()),
                ("t", FixPtT(16, 16)),
                ("tri", UIntT(32)),
                ("shade", FixPtT(16, 16)),
            ],
        )
        value = {
            "hit": hit,
            "t": FixedPoint.from_float(t_value, 16, 16),
            "tri": tri,
            "shade": FixedPoint.from_float(shade, 16, 16),
        }
        words = marshal.marshal_value(hit_t, value)
        assert marshal.demarshal_value(hit_t, words) == value
