"""Tests for the bit-accurate type system and the marshaling layer (Section 2.3 / 4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError, TypeCheckError, WireFormatError
from repro.core.fixedpoint import FixComplex, FixedPoint
from repro.core.types import (
    BitT,
    BoolT,
    ComplexT,
    FixPtT,
    IntT,
    OpaqueT,
    StructT,
    UIntT,
    VectorT,
    words_for,
)
from repro.platform import marshal


class TestScalarTypes:
    def test_bool_pack_unpack(self):
        t = BoolT()
        assert t.bit_width() == 1
        assert t.unpack(t.pack(True)) is True
        assert t.unpack(t.pack(False)) is False

    def test_bool_rejects_non_bool(self):
        with pytest.raises(TypeCheckError):
            BoolT().pack(1)

    @pytest.mark.parametrize("width", [1, 8, 16, 32, 64])
    def test_uint_roundtrip(self, width):
        t = UIntT(width)
        value = (1 << width) - 1
        assert t.unpack(t.pack(value)) == value
        assert t.unpack(t.pack(0)) == 0

    def test_uint_out_of_range(self):
        with pytest.raises(TypeCheckError):
            UIntT(8).pack(256)
        with pytest.raises(TypeCheckError):
            UIntT(8).pack(-1)

    @pytest.mark.parametrize("value", [-128, -1, 0, 1, 127])
    def test_int_roundtrip(self, value):
        t = IntT(8)
        assert t.unpack(t.pack(value)) == value

    def test_int_out_of_range(self):
        with pytest.raises(TypeCheckError):
            IntT(8).pack(128)

    def test_bit_type(self):
        t = BitT(12)
        assert t.bit_width() == 12
        assert t.unpack(t.pack(0xABC)) == 0xABC

    def test_fixpt_roundtrip(self):
        t = FixPtT(8, 24)
        x = FixedPoint.from_float(-1.375)
        assert t.unpack(t.pack(x)) == x
        assert t.bit_width() == 32

    def test_fixpt_format_mismatch(self):
        t = FixPtT(8, 24)
        with pytest.raises(TypeCheckError):
            t.pack(FixedPoint.from_float(1.0, 16, 16))

    def test_complex_roundtrip(self):
        t = ComplexT(FixPtT(8, 24))
        c = FixComplex.from_floats(0.5, -0.25)
        assert t.unpack(t.pack(c)) == c
        assert t.bit_width() == 64

    def test_defaults(self):
        assert BoolT().default() is False
        assert UIntT(8).default() == 0
        assert FixPtT().default() == FixedPoint.zero()


class TestCompositeTypes:
    def test_vector_roundtrip(self):
        t = VectorT(4, UIntT(8))
        value = (1, 2, 3, 255)
        assert t.unpack(t.pack(value)) == value
        assert t.bit_width() == 32

    def test_vector_wrong_length(self):
        with pytest.raises(TypeCheckError):
            VectorT(4, UIntT(8)).pack((1, 2, 3))

    def test_vector_of_complex(self):
        t = VectorT(3, ComplexT(FixPtT(8, 24)))
        value = tuple(FixComplex.from_floats(i * 0.5, -i) for i in range(3))
        assert t.unpack(t.pack(value)) == value

    def test_struct_roundtrip(self):
        t = StructT("Pair", [("a", UIntT(8)), ("b", IntT(8))])
        value = {"a": 200, "b": -5}
        assert t.unpack(t.pack(value)) == value

    def test_struct_missing_field(self):
        t = StructT("Pair", [("a", UIntT(8)), ("b", IntT(8))])
        with pytest.raises(TypeCheckError):
            t.pack({"a": 1})

    def test_struct_duplicate_fields_rejected(self):
        with pytest.raises(TypeCheckError):
            StructT("Bad", [("a", UIntT(8)), ("a", UIntT(8))])

    def test_nested_struct(self):
        vec3 = StructT("Vec3", [("x", FixPtT(16, 16)), ("y", FixPtT(16, 16)), ("z", FixPtT(16, 16))])
        tri = StructT("Tri", [("v0", vec3), ("v1", vec3), ("v2", vec3)])
        value = {
            name: {axis: FixedPoint.from_float(i + 0.5, 16, 16) for i, axis in enumerate("xyz")}
            for name in ("v0", "v1", "v2")
        }
        assert tri.unpack(tri.pack(value)) == value
        assert tri.bit_width() == 9 * 32

    def test_struct_field_type_lookup(self):
        t = StructT("Pair", [("a", UIntT(8)), ("b", IntT(8))])
        assert t.field_type("a") == UIntT(8)
        with pytest.raises(TypeCheckError):
            t.field_type("c")

    def test_words_for(self):
        assert words_for(UIntT(32)) == 1
        assert words_for(UIntT(33)) == 2
        assert words_for(VectorT(64, ComplexT(FixPtT(8, 24)))) == 128

    def test_opaque_type_refuses_packing(self):
        t = OpaqueT(default=())
        assert t.default() == ()
        with pytest.raises(TypeCheckError):
            t.pack(())
        with pytest.raises(TypeCheckError):
            t.bit_width()

    def test_type_equality_and_hash(self):
        assert VectorT(4, UIntT(8)) == VectorT(4, UIntT(8))
        assert hash(VectorT(4, UIntT(8))) == hash(VectorT(4, UIntT(8)))
        assert VectorT(4, UIntT(8)) != VectorT(5, UIntT(8))


class TestMarshaling:
    def test_marshal_value_roundtrip(self):
        t = VectorT(8, UIntT(32))
        value = tuple(range(8))
        words = marshal.marshal_value(t, value)
        assert len(words) == 8
        assert marshal.demarshal_value(t, words) == value

    def test_frame_and_unframe(self):
        framed = marshal.frame_message(3, [10, 20, 30])
        vc, payload = marshal.unframe_message(framed)
        assert vc == 3
        assert payload == [10, 20, 30]

    def test_marshal_message_roundtrip(self):
        t = StructT("Hit", [("hit", BoolT()), ("t", FixPtT(16, 16)), ("tri", UIntT(32))])
        value = {"hit": True, "t": FixedPoint.from_float(2.5, 16, 16), "tri": 7}
        words = marshal.marshal_message(5, t, value)
        vc, decoded = marshal.demarshal_message(t, words)
        assert vc == 5
        assert decoded == value

    def test_message_words_includes_header(self):
        t = VectorT(64, ComplexT(FixPtT(8, 24)))
        assert marshal.message_words(t) == 129

    def test_bad_vc_id_rejected(self):
        with pytest.raises(SimulationError):
            marshal.frame_message(300, [1])

    def test_length_mismatch_detected(self):
        framed = marshal.frame_message(1, [1, 2, 3])
        with pytest.raises(SimulationError):
            marshal.unframe_message(framed[:-1])

    def test_demarshal_word_count_checked(self):
        with pytest.raises(SimulationError):
            marshal.demarshal_value(UIntT(32), [1, 2])

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_vector_marshal_roundtrip_property(self, values):
        t = VectorT(len(values), UIntT(32))
        words = marshal.marshal_value(t, tuple(values))
        assert marshal.demarshal_value(t, words) == tuple(values)

    @given(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.booleans(),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_struct_marshal_roundtrip_property(self, t_value, shade, hit, tri):
        hit_t = StructT(
            "Hit",
            [
                ("hit", BoolT()),
                ("t", FixPtT(16, 16)),
                ("tri", UIntT(32)),
                ("shade", FixPtT(16, 16)),
            ],
        )
        value = {
            "hit": hit,
            "t": FixedPoint.from_float(t_value, 16, 16),
            "tri": tri,
            "shade": FixedPoint.from_float(shade, 16, 16),
        }
        words = marshal.marshal_value(hit_t, value)
        assert marshal.demarshal_value(hit_t, words) == value

    @given(
        st.integers(min_value=-(1 << 7), max_value=(1 << 7) - 1),
        st.integers(min_value=0, max_value=(1 << 24) - 1),
        st.sampled_from([16, 32, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_negative_fixed_point_roundtrip_property(self, int_part, frac_bits, word_bits):
        """Negative fixed-point values survive the wire at every word width.

        The sign bit lives at the top of the payload bit vector, so this is
        the case a word-split bug corrupts first (the two's-complement bits
        span the word boundary for word_bits < 32)."""
        t = FixPtT(8, 24)
        value = FixedPoint.from_bits(
            ((int_part << 24) | frac_bits) & ((1 << 32) - 1), 8, 24
        )
        words = marshal.marshal_value(t, value, word_bits)
        assert len(words) == marshal.words_for(t, word_bits)
        assert all(0 <= w < (1 << word_bits) for w in words)
        assert marshal.demarshal_value(t, words, word_bits) == value
        assert marshal.demarshal_value(t, words, word_bits).to_float() == value.to_float()

    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1), min_size=1, max_size=8),
        st.sampled_from([16, 32, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_non_32_bit_word_widths_roundtrip_property(self, values, word_bits):
        """Marshaling is width-generic: 16/32/64-bit links carry the same bits.

        Value packing works at any width; *framing* additionally needs the
        header to fit one word, which 16-bit links cannot provide -- framed
        roundtrips are checked at 32/64 and the 16-bit case is a build-time
        :class:`WireFormatError` (see ``TestWireFormatValidation``)."""
        t = VectorT(len(values), UIntT(20))
        value = tuple(values)
        words = marshal.marshal_value(t, value, word_bits)
        assert marshal.demarshal_value(t, words, word_bits) == value
        if word_bits >= marshal.VC_ID_BITS + marshal.LENGTH_BITS:
            framed = marshal.marshal_message(1, t, value, word_bits)
            assert marshal.demarshal_message(t, framed, word_bits) == (1, value)

    def test_maximum_width_payload_fits_the_length_field(self):
        """A payload of exactly 2**LENGTH_BITS - 1 words frames and unframes."""
        max_words = (1 << marshal.LENGTH_BITS) - 1
        t = BitT(32 * max_words)
        assert marshal.words_for(t, 32) == max_words
        value = t.unpack((1 << 40) - 1)  # sparse value: huge widths stay cheap
        framed = marshal.marshal_message(0, t, value, 32)
        assert len(framed) == max_words + 1
        vc, decoded = marshal.demarshal_message(t, framed, 32)
        assert vc == 0 and decoded == value
        assert marshal.layout_for(t, 32).payload_words == max_words

    def test_oversized_payload_is_a_build_time_wire_format_error(self):
        t = BitT(32 * (1 << marshal.LENGTH_BITS))
        with pytest.raises(WireFormatError):
            marshal.layout_for(t, 32)

    def test_message_words_regression_against_link_widths(self):
        """Pins message_words for the fig13 frame type across link_params widths.

        The interface generator sizes its buffers and the cost model its
        transfers from these counts; a drift silently breaks the generated
        C array bounds."""
        frame_t = VectorT(64, ComplexT(FixPtT(8, 24)))  # 4096 payload bits
        assert marshal.message_words(frame_t, 16) == 257
        assert marshal.message_words(frame_t, 32) == 129
        assert marshal.message_words(frame_t, 64) == 65
        assert marshal.message_words(UIntT(32), 32) == 2
        assert marshal.message_words(BoolT(), 32) == 2

    def test_demarshal_message_is_index_based(self):
        """Hot-path decoding reads a window of a shared buffer -- no copy."""
        t = UIntT(32)
        buffer = [999] * 3 + marshal.marshal_message(2, t, 77) + [888]
        vc, value = marshal.demarshal_message(t, buffer, start=3, end=5)
        assert (vc, value) == (2, 77)
        assert buffer[0] == 999 and buffer[-1] == 888  # untouched


class TestMessageLayout:
    def test_one_layout_per_type_and_width(self):
        t = VectorT(4, UIntT(32))
        assert marshal.layout_for(t, 32) is marshal.layout_for(VectorT(4, UIntT(32)), 32)
        assert marshal.layout_for(t, 32) is not marshal.layout_for(t, 64)

    def test_header_word_is_the_wire_header(self):
        layout = marshal.layout_for(UIntT(32), 32)
        assert layout.header_word(5) == marshal.wire_header(5, 1)
        assert marshal.unframe_header(layout.header_word(5)) == (5, 1)

    def test_header_vc_range_checked(self):
        layout = marshal.layout_for(UIntT(32), 32)
        with pytest.raises(WireFormatError):
            layout.header_word(1 << marshal.VC_ID_BITS)

    def test_encoder_matches_reference_marshal(self):
        t = StructT("Hit", [("hit", BoolT()), ("t", FixPtT(16, 16))])
        layout = marshal.layout_for(t, 32)
        value = {"hit": True, "t": FixedPoint.from_float(-1.25, 16, 16)}
        assert list(layout.encoder(3)(value)) == marshal.marshal_message(3, t, value)
        assert layout.decoder()(layout.encoder(3)(value), 1) == value

    def test_batch_encoder_concatenates_framed_messages(self):
        layout = marshal.layout_for(UIntT(32), 32)
        flat = layout.batch_encoder(1)([7, 8, 9])
        assert flat == sum((marshal.marshal_message(1, UIntT(32), v) for v in (7, 8, 9)), [])

    def test_run_decoder_reads_fixed_stride_runs(self):
        t = VectorT(2, UIntT(32))
        layout = marshal.layout_for(t, 32)
        values = [(1, 2), (3, 4), (5, 6)]
        flat = layout.batch_encoder(0)(values)
        assert layout.run_decoder()(flat, 0, 3) == values
        # Index-based: a shifted window decodes the tail of the run.
        assert layout.run_decoder()(flat, layout.message_words, 2) == values[1:]

    def test_field_slices_cover_the_payload(self):
        t = StructT(
            "Ray",
            [
                ("origin", StructT("V", [("x", FixPtT(8, 24)), ("y", FixPtT(8, 24))])),
                ("pixel", UIntT(32)),
            ],
        )
        layout = marshal.layout_for(t, 32)
        by_path = {f.path: f for f in layout.fields}
        # First declared field sits in the most significant bits.
        assert by_path["pixel"].bit_offset == 0
        assert by_path["origin.y"].bit_offset == 32
        assert by_path["origin.x"].bit_offset == 64
        assert sum(f.bit_width * f.count for f in layout.fields) == t.bit_width()

    def test_vector_fields_collapse_to_strided_slices(self):
        t = VectorT(64, ComplexT(FixPtT(8, 24)))
        layout = marshal.layout_for(t, 32)
        assert [f.path for f in layout.fields] == ["[*]im", "[*]re"]
        assert all(f.count == 64 and f.stride == 64 for f in layout.fields)

    def test_word_spans_split_fields_at_word_boundaries(self):
        t = StructT("S", [("a", UIntT(8)), ("b", UIntT(48))])  # b spans two 32-bit words
        layout = marshal.layout_for(t, 32)
        spans = [s for s in layout.word_spans() if s.path == "b"]
        assert [(s.word, s.shift, s.width, s.field_lsb) for s in spans] == [
            (0, 0, 32, 0),
            (1, 0, 16, 32),
        ]

    def test_compiled_pack_fast_path_keeps_reference_errors(self):
        layout = marshal.layout_for(UIntT(8), 32)
        encode = layout.encoder(0)
        assert encode(255) == (layout.header_word(0), 255)
        with pytest.raises(TypeCheckError):
            encode(256)
        with pytest.raises(TypeCheckError):
            encode(True)  # bools are not UInt inhabitants, fast path must not accept


class TestFusedPackUnpack:
    """The fused per-layout pack/unpack closures must be observationally
    identical to ``ty.pack``/``ty.unpack`` -- values, error types *and*
    error messages."""

    #: The frame shapes the transport actually moves, plus awkward nestings.
    TYPES = [
        UIntT(32),
        BitT(7),
        IntT(16),
        BoolT(),
        FixPtT(8, 24),
        FixPtT(24, 40),
        ComplexT(FixPtT(16, 16)),
        VectorT(8, FixPtT(8, 24)),
        VectorT(64, ComplexT(FixPtT(8, 24))),
        VectorT(16, UIntT(32)),
        VectorT(5, BitT(3)),
        VectorT(4, IntT(8)),
        VectorT(3, VectorT(2, FixPtT(4, 4))),
        StructT(
            "Ray",
            [
                ("origin", VectorT(3, FixPtT(16, 16))),
                ("dir", VectorT(3, FixPtT(16, 16))),
                ("pixel", UIntT(16)),
            ],
        ),
        StructT(
            "Mix",
            [
                ("flag", BoolT()),
                ("z", ComplexT(FixPtT(4, 4))),
                ("inner", StructT("Inner", [("x", IntT(5)), ("y", UIntT(3))])),
            ],
        ),
    ]

    @staticmethod
    def _random_value(rng, ty):
        import random as _random

        if isinstance(ty, (UIntT, BitT)):
            return rng.randrange(1 << ty.n)
        if isinstance(ty, BoolT):
            return rng.random() < 0.5
        if isinstance(ty, IntT):
            return rng.randrange(-(1 << (ty.n - 1)), 1 << (ty.n - 1))
        if isinstance(ty, FixPtT):
            total = ty.bit_width()
            return FixedPoint.from_raw(
                rng.randrange(-(1 << (total - 1)), 1 << (total - 1)),
                ty.int_bits,
                ty.frac_bits,
            )
        if isinstance(ty, ComplexT):
            make = TestFusedPackUnpack._random_value
            return FixComplex(make(rng, ty.elem), make(rng, ty.elem))
        if isinstance(ty, VectorT):
            make = TestFusedPackUnpack._random_value
            return tuple(make(rng, ty.elem) for _ in range(ty.n))
        assert isinstance(ty, StructT)
        make = TestFusedPackUnpack._random_value
        return {f: make(rng, t) for f, t in ty.fields}

    @pytest.mark.parametrize("ty", TYPES, ids=repr)
    def test_fused_matches_reference_on_random_values(self, ty):
        import random

        rng = random.Random(repr(ty))
        pack = marshal._compile_pack(ty)
        unpack = marshal._compile_unpack(ty)
        for _ in range(200):
            value = self._random_value(rng, ty)
            bits = ty.pack(value)
            assert pack(value) == bits
            decoded = unpack(bits)
            reference = ty.unpack(bits)
            assert decoded == reference
            assert type(decoded) is type(reference)
            if isinstance(reference, dict):
                assert list(decoded) == list(reference)

    def test_vectors_accept_lists_like_the_reference(self):
        ty = VectorT(3, FixPtT(8, 24))
        value = [FixedPoint.from_float(v, 8, 24) for v in (0.5, -1.25, 2.0)]
        assert marshal._compile_pack(ty)(value) == ty.pack(value)

    @pytest.mark.parametrize(
        "ty,value",
        [
            (UIntT(8), 256),
            (UIntT(8), -1),
            (UIntT(8), True),
            (UIntT(8), "x"),
            (IntT(8), 128),
            (BoolT(), 1),
            (FixPtT(8, 24), 5),
            (FixPtT(8, 24), FixedPoint.from_raw(0, 4, 12)),
            (ComplexT(FixPtT(8, 24)), 3),
            (
                ComplexT(FixPtT(8, 24)),
                FixComplex(FixedPoint.from_raw(0, 4, 12), FixedPoint.from_raw(0, 4, 12)),
            ),
            (VectorT(3, UIntT(8)), (1, 2)),
            (VectorT(3, UIntT(8)), (1, 2, 999)),
            (VectorT(3, UIntT(8)), "abc"),
            (VectorT(2, FixPtT(4, 4)), (FixedPoint.from_raw(0, 4, 4), 7)),
            (StructT("S", [("a", UIntT(4)), ("b", UIntT(4))]), {"a": 1}),
            (StructT("S", [("a", UIntT(4)), ("b", UIntT(4))]), [1, 2]),
            (StructT("S", [("a", UIntT(4)), ("b", UIntT(4))]), {"a": 1, "b": 99}),
        ],
    )
    def test_fused_fallback_reproduces_reference_errors(self, ty, value):
        def outcome(fn):
            try:
                fn(value)
                return None
            except Exception as exc:  # noqa: BLE001 - comparing behaviours
                return (type(exc), str(exc))

        reference = outcome(ty.pack)
        assert reference is not None
        assert outcome(marshal._compile_pack(ty)) == reference

    def test_legal_values_the_fast_predicate_rejects_still_pack(self):
        """A FixedPoint subclass passes the reference isinstance check but
        not the fused ``__class__ is`` predicate: the fallback must pack it."""

        class SubFix(FixedPoint):
            pass

        ty = FixPtT(8, 24)
        value = SubFix(3, 8, 24)
        assert marshal._compile_pack(ty)(value) == ty.pack(value)

    def test_non_dict_mappings_still_pack(self):
        from collections import OrderedDict

        ty = StructT("S", [("a", UIntT(4)), ("b", UIntT(4))])
        value = OrderedDict((("b", 2), ("a", 1)))
        assert marshal._compile_pack(ty)(value) == ty.pack(value)

    def test_opaque_keeps_reference_behaviour(self):
        ty = OpaqueT()
        with pytest.raises(TypeCheckError):
            marshal._compile_pack(ty)(object())
        with pytest.raises(TypeCheckError):
            marshal._compile_unpack(ty)(0)

    def test_layout_decoder_uses_fused_unpack(self):
        ty = VectorT(4, ComplexT(FixPtT(8, 24)))
        layout = marshal.layout_for(ty, 32)
        import random

        rng = random.Random(13)
        value = self._random_value(rng, ty)
        words = layout.encoder(2)(value)
        assert layout.decoder()(words, 1) == value
        flat = layout.batch_encoder(2)([value, value])
        assert layout.run_decoder()(flat, 0, 2) == [value, value]


class TestWireFormatValidation:
    def test_header_must_fit_the_link_word(self):
        with pytest.raises(WireFormatError, match="word width is 16"):
            marshal.validate_wire_format(1, 1, 16)

    def test_16_bit_links_rejected_at_layout_build_time(self):
        with pytest.raises(WireFormatError):
            marshal.layout_for(UIntT(32), 16)

    def test_vc_id_space_checked(self):
        with pytest.raises(WireFormatError, match="vc-id space"):
            marshal.validate_wire_format((1 << marshal.VC_ID_BITS) + 1, 1, 32)

    def test_payload_length_checked(self):
        with pytest.raises(WireFormatError, match="length field"):
            marshal.validate_wire_format(1, 1 << marshal.LENGTH_BITS, 32)

    def test_wire_format_error_is_a_simulation_error(self):
        assert issubclass(WireFormatError, SimulationError)
