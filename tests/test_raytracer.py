"""Tests for the ray tracer: geometry kernels, BVH properties, partition equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.raytracer import geometry
from repro.apps.raytracer.bvh import brute_force, build_bvh, traverse
from repro.apps.raytracer.params import RayTracerParams
from repro.apps.raytracer.partitions import PARTITION_ORDER, PARTITIONS, build_partition
from repro.apps.raytracer.reference import expected_checksum, render
from repro.core.domains import HW, SW
from repro.core.fixedpoint import FixedPoint
from repro.sim.cosim import Cosimulator

SMALL = RayTracerParams(n_triangles=24, image_width=4, image_height=4)

coords = st.floats(min_value=0.2, max_value=4.5, allow_nan=False, allow_infinity=False)


class TestGeometry:
    def test_vector_ops(self):
        a, b = geometry.vec(1, 2, 3), geometry.vec(4, 5, 6)
        assert geometry.v_dot(a, b).to_float() == pytest.approx(32.0, abs=1e-3)
        cross = geometry.v_cross(a, b)
        assert cross["x"].to_float() == pytest.approx(-3.0, abs=1e-3)
        assert geometry.v_add(a, b)["z"].to_float() == pytest.approx(9.0)
        assert geometry.v_sub(b, a)["y"].to_float() == pytest.approx(3.0)

    def test_cross_product_orthogonality(self):
        a, b = geometry.vec(1, 0.5, 2), geometry.vec(-1, 2, 0.25)
        cross = geometry.v_cross(a, b)
        assert abs(geometry.v_dot(cross, a).to_float()) < 1e-2
        assert abs(geometry.v_dot(cross, b).to_float()) < 1e-2

    def test_ray_hits_triangle_in_front(self):
        triangle = {
            "v0": geometry.vec(0, 0, 5),
            "v1": geometry.vec(4, 0, 5),
            "v2": geometry.vec(0, 4, 5),
        }
        ray = {"origin": geometry.vec(1, 1, 0), "dir": geometry.vec(0, 0, 1), "pixel": 0}
        t = geometry.intersect_triangle(ray, triangle)
        assert t is not None
        assert t.to_float() == pytest.approx(5.0, abs=0.01)

    def test_ray_misses_triangle_behind(self):
        triangle = {
            "v0": geometry.vec(0, 0, -5),
            "v1": geometry.vec(4, 0, -5),
            "v2": geometry.vec(0, 4, -5),
        }
        ray = {"origin": geometry.vec(1, 1, 0), "dir": geometry.vec(0, 0, 1), "pixel": 0}
        assert geometry.intersect_triangle(ray, triangle) is None

    def test_ray_misses_triangle_to_the_side(self):
        triangle = {
            "v0": geometry.vec(10, 10, 5),
            "v1": geometry.vec(11, 10, 5),
            "v2": geometry.vec(10, 11, 5),
        }
        ray = {"origin": geometry.vec(1, 1, 0), "dir": geometry.vec(0, 0, 1), "pixel": 0}
        assert geometry.intersect_triangle(ray, triangle) is None

    def test_box_contains_hit(self):
        ray = {"origin": geometry.vec(1, 1, 0), "dir": geometry.vec(0, 0, 1), "pixel": 0}
        assert geometry.intersect_box(ray, geometry.vec(0, 0, 2), geometry.vec(2, 2, 4))
        assert not geometry.intersect_box(ray, geometry.vec(5, 5, 2), geometry.vec(6, 6, 4))

    def test_box_behind_ray_misses(self):
        ray = {"origin": geometry.vec(1, 1, 10), "dir": geometry.vec(0, 0, 1), "pixel": 0}
        assert not geometry.intersect_box(ray, geometry.vec(0, 0, 2), geometry.vec(2, 2, 4))

    def test_degenerate_triangle_never_hit(self):
        tri = geometry.degenerate_triangle()
        ray = {"origin": geometry.vec(1, 1, 0), "dir": geometry.vec(0, 0, 1), "pixel": 0}
        assert geometry.intersect_triangle(ray, tri) is None

    def test_lambert_shade_in_unit_range(self):
        triangle = {
            "v0": geometry.vec(0, 0, 5),
            "v1": geometry.vec(4, 0, 5),
            "v2": geometry.vec(0, 4, 5),
        }
        shade = geometry.lambert_shade(triangle, geometry.light_direction())
        assert 0.0 <= shade.to_float() <= 1.0

    def test_scene_generation_deterministic(self):
        assert geometry.generate_scene(8, seed=3) == geometry.generate_scene(8, seed=3)
        assert geometry.generate_scene(8, seed=3) != geometry.generate_scene(8, seed=4)

    def test_camera_rays_distinct_per_pixel(self):
        r0 = geometry.camera_ray(0, 4, 4)
        r5 = geometry.camera_ray(5, 4, 4)
        assert r0["dir"] != r5["dir"]
        assert r0["pixel"] == 0 and r5["pixel"] == 5

    def test_struct_types_pack_a_ray(self):
        types = geometry.struct_types()
        ray = geometry.camera_ray(3, 4, 4)
        assert types["ray"].unpack(types["ray"].pack(ray)) == ray


class TestBvh:
    def test_build_covers_all_triangles(self):
        triangles = geometry.generate_scene(40)
        bvh = build_bvh(triangles, leaf_size=4)
        assert len(bvh.triangles) == 40
        leaf_total = sum(n["tri_count"] for n in bvh.nodes if n["is_leaf"])
        assert leaf_total == 40

    def test_leaf_size_respected(self):
        bvh = build_bvh(geometry.generate_scene(50), leaf_size=4)
        assert all(n["tri_count"] <= 4 for n in bvh.nodes if n["is_leaf"])

    def test_child_boxes_inside_parent(self):
        bvh = build_bvh(geometry.generate_scene(30), leaf_size=2)
        for node in bvh.nodes:
            if node["is_leaf"]:
                continue
            for child_index in (node["left"], node["right"]):
                child = bvh.nodes[child_index]
                for axis in ("x", "y", "z"):
                    assert child["bbox_min"][axis] >= node["bbox_min"][axis]
                    assert child["bbox_max"][axis] <= node["bbox_max"][axis]

    def test_empty_scene_rejected(self):
        with pytest.raises(ValueError):
            build_bvh([], leaf_size=4)

    def test_traversal_matches_brute_force_on_camera_rays(self):
        triangles = geometry.generate_scene(60, seed=11)
        bvh = build_bvh(triangles, leaf_size=4)
        for pixel in range(16):
            ray = geometry.camera_ray(pixel, 4, 4)
            bvh_hit, bvh_t, _ = traverse(bvh, ray)
            brute_hit, brute_t, _ = brute_force(triangles, ray)
            assert bvh_hit == brute_hit
            if bvh_hit:
                assert bvh_t == brute_t

    @given(coords, coords, st.integers(min_value=4, max_value=40), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_traversal_matches_brute_force_property(self, x, y, n_triangles, seed):
        triangles = geometry.generate_scene(n_triangles, seed=seed)
        bvh = build_bvh(triangles, leaf_size=3)
        ray = {
            "origin": geometry.vec(x, y, -1.0),
            "dir": geometry.vec(0.05, -0.03, 1.0),
            "pixel": 0,
        }
        bvh_hit, bvh_t, _ = traverse(bvh, ray)
        brute_hit, brute_t, _ = brute_force(bvh.triangles, ray)
        assert bvh_hit == brute_hit
        if bvh_hit:
            assert bvh_t == brute_t

    def test_max_depth_logarithmic(self):
        bvh = build_bvh(geometry.generate_scene(128), leaf_size=4)
        assert bvh.max_depth() <= 10


class TestRayTracerDesign:
    def test_partition_placements(self):
        assert all(dom == SW for dom in PARTITIONS["A"].values())
        assert all(dom == HW for dom in PARTITIONS["C"].values())
        assert PARTITIONS["B"]["bvh_mem"] == SW and PARTITIONS["B"]["trav"] == HW
        assert PARTITIONS["D"]["geom"] == HW and PARTITIONS["D"]["trav"] == SW

    def test_reference_render_is_deterministic(self):
        assert render(SMALL).checksum == render(SMALL).checksum

    def test_reference_render_hits_something(self):
        result = render(RayTracerParams(n_triangles=128, image_width=6, image_height=6))
        assert result.hits > 0

    @pytest.mark.parametrize("letter", PARTITION_ORDER)
    def test_every_partition_is_bit_exact(self, letter):
        tracer = build_partition(letter, SMALL)
        cosim = Cosimulator(tracer.design)
        result = cosim.run(tracer.cosim_done, max_cycles=200_000_000)
        assert result.completed
        assert cosim.read_sw(tracer.checksum) == expected_checksum(SMALL)

    def test_partition_b_generates_much_more_traffic_than_c(self):
        results = {}
        for letter in ("B", "C"):
            tracer = build_partition(letter, SMALL)
            cosim = Cosimulator(tracer.design)
            results[letter] = cosim.run(tracer.cosim_done, max_cycles=200_000_000)
        assert results["B"].channel_words > 3 * results["C"].channel_words

    def test_unknown_partition_rejected(self):
        with pytest.raises(KeyError):
            build_partition("Z", SMALL)

    def test_unknown_module_placement_rejected(self):
        from repro.apps.raytracer.pipeline import build_raytracer

        with pytest.raises(ValueError):
            build_raytracer(SMALL, {"bogus": HW})
