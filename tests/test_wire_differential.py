"""Cross-layer wire-format differential: simulator vs. generated interfaces.

The heart of the Section 4.4 claim is that both sides of every synchronizer
use the *same* canonical bit-level packing, so the data-format mismatch of
Section 2.3 cannot arise.  These tests prove our three layers actually
agree, byte for byte, over every fig13 workload and the multi-domain G/H
partitions:

1. **Simulator wire path** -- values pushed through the co-simulation
   fabric's transport (both backends) land on the link as packed word
   arrays; we capture them straight out of the link's message pool.
2. **Layout** -- the channel's :class:`~repro.platform.marshal.MessageLayout`
   (the single source of truth) must produce the identical framed words.
3. **Generated artifacts** -- the header constants and word counts embedded
   in the generated C pack/unpack helpers and BSV marshal/dispatch rules
   are parsed back out of the artifact text and *re-executed in Python*
   (header word + LSW-first payload copy, exactly what the emitted loops
   do); the resulting bytes must equal the simulator's.

Finally the delivered value must round-trip: what the consumer engine
receives is bit-identical to what the producer enqueued.
"""

import re

import pytest

from repro.apps.raytracer.params import RayTracerParams
from repro.apps.raytracer.partitions import (
    PARTITION_ORDER as RAY_ORDER,
    build_partition as build_ray_partition,
)
from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import (
    MULTI_PARTITION_ORDER,
    PARTITION_ORDER as VORBIS_ORDER,
    build_multi_partition,
    build_partition as build_vorbis_partition,
)
from repro.codegen.interface import (
    build_interface_spec,
    generate_sw_marshal_source,
    generate_transactors,
)
from repro.core.domains import SW
from repro.core.partition import partition_design
from repro.platform.marshal import layout_for, marshal_message, wire_header
from repro.sim.cosim import CosimFabric

VORBIS_PARAMS = VorbisParams(n_frames=2)
RAY_PARAMS = RayTracerParams(n_triangles=24, image_width=3, image_height=3)

WORKLOADS = (
    [(f"vorbis_{l}", build_vorbis_partition, l, VORBIS_PARAMS) for l in VORBIS_ORDER]
    + [(f"raytracer_{l}", build_ray_partition, l, RAY_PARAMS) for l in RAY_ORDER]
    + [(f"vorbis_{l}", build_multi_partition, l, VORBIS_PARAMS) for l in MULTI_PARTITION_ORDER]
)


def sample_values(ty):
    """Representative elements of ``ty``: default, all-zeros/ones, bit stripes.

    Built through ``ty.unpack`` so every sample is canonical by
    construction (packing it reproduces the exact source bits).
    """
    width = ty.bit_width()
    mask = (1 << width) - 1
    stripes = int("5" * ((width + 3) // 4), 16) & mask
    return [
        ty.default(),
        ty.unpack(0),
        ty.unpack(mask),
        ty.unpack(stripes),
        ty.unpack(stripes << 1 & mask),
    ]


def push_one(fabric, route, value, now=0.0):
    """Send ``value`` over one fabric route; returns the captured wire words."""
    sync, vc, _engine, producer_store, consumer_store, direction, _sw = route
    pool = direction.pool
    pool.compact()  # the drained prefix would otherwise compact mid-push
    base_slots = len(pool.due)
    base_words = len(pool.words)
    producer_store[sync.data] = (value,)
    assert fabric._pump_transport(now), f"{sync.name}: pump launched nothing"
    assert len(pool.due) == base_slots + 1, f"{sync.name}: expected one message"
    return list(pool.words[base_words:])


def drain_one(fabric, route, now):
    """Deliver everything in flight on the route; returns the landed value.

    ``now`` must clear both the message's delivery time and any driver
    charge from the previous delivery (a busy software consumer parks
    deliveries, exactly as in a real run).
    """
    sync, vc, _engine, _producer_store, consumer_store, direction, _sw = route
    assert fabric._deliver_due(now), f"{sync.name}: nothing delivered"
    landed = consumer_store[sync.data]
    assert len(landed) == 1
    consumer_store[sync.data] = ()  # drain the endpoint; credits recompute
    return landed[0]


@pytest.mark.parametrize("name,builder,letter,params", WORKLOADS, ids=lambda w: None)
class TestSimulatorWireBytes:
    """Both transport backends put the layout's exact bytes on every link."""

    @pytest.fixture(params=["interp", "compiled"])
    def transport(self, request):
        return request.param

    def test_wire_bytes_match_layout_and_roundtrip(
        self, name, builder, letter, params, transport
    ):
        workload = builder(letter, params)
        fabric = CosimFabric(workload.design, backend="compiled", transport=transport)
        if not fabric._routes:
            pytest.skip(f"{name}: empty cut (single-domain partition)")
        clock = 0.0
        for route in fabric._routes:
            sync, vc = route[0], route[1]
            for value in sample_values(sync.ty):
                wire = push_one(fabric, route, value, now=clock)
                expected = vc.layout.pack_message(vc.vc_id, value)
                assert wire == expected, f"{name}/{sync.name}: wire bytes diverge"
                assert wire == marshal_message(
                    vc.vc_id, sync.ty, value, vc.word_bits
                ), f"{name}/{sync.name}: layout diverges from reference marshal"
                assert wire[0] == wire_header(vc.vc_id, vc.layout.payload_words)
                assert len(wire) == vc.words_per_element
                # One window per message: clears delivery latency and any
                # software-consumer driver charge from the previous one.
                clock += 1e6
                delivered = drain_one(fabric, route, now=clock)
                assert delivered == sync.ty.unpack(sync.ty.pack(value)), (
                    f"{name}/{sync.name}: delivered value is not the canonical roundtrip"
                )
                clock += 1e6


def _parsed_c_pack(source: str, ch):
    """Re-execute the generated C pack loop: header literal + payload copy."""
    pattern = (
        rf"static inline void \w*pack_{re.escape(ch.macro)}\(.*?"
        rf"msg\[0\] = 0x([0-9A-Fa-f]+)u(?:ll)?;.*?"
        rf"for \(unsigned i = 0; i < (\d+)u; \+\+i\)"
    )
    m = re.search(pattern, source, re.DOTALL)
    assert m, f"generated C has no pack loop for {ch.name}"
    header, n = int(m.group(1), 16), int(m.group(2))

    def pack(payload):
        assert len(payload) == n, f"{ch.name}: C loop copies {n} words"
        return [header] + list(payload)

    return pack


def _parsed_c_unpack_header(source: str, ch) -> int:
    m = re.search(
        rf"static inline int \w*unpack_{re.escape(ch.macro)}\(.*?"
        rf"if \(msg\[0\] != 0x([0-9A-Fa-f]+)u(?:ll)?\)",
        source,
        re.DOTALL,
    )
    assert m, f"generated C has no unpack check for {ch.name}"
    return int(m.group(1), 16)


def _parsed_bsv_marshal(source: str, ch):
    """Re-execute the generated BSV marshal rules: header enq + word stream."""
    m = re.search(
        rf"rule marshal_{re.escape(ch.macro)}_header.*?"
        rf"enq\((\d+)'h([0-9A-Fa-f]+)\);.*?{re.escape(ch.macro)}_mleft <= (\d+);",
        source,
        re.DOTALL,
    )
    assert m, f"generated BSV has no marshal rules for {ch.name}"
    word_bits, header, n = int(m.group(1)), int(m.group(2), 16), int(m.group(3))

    def pack(bits):
        words = [header]
        mask = (1 << word_bits) - 1
        for _ in range(n):  # the word rule: truncate, then shift right
            words.append(bits & mask)
            bits >>= word_bits
        return words

    return pack


def _parsed_bsv_dispatch(source: str, ch):
    m = re.search(
        rf"rule dispatch_{re.escape(ch.macro)} \(rx_valid && rx_vc == (\d+)"
        rf" && rx_fill == (\d+)\);",
        source,
    )
    assert m, f"generated BSV has no dispatch rule for {ch.name}"
    return int(m.group(1)), int(m.group(2))


@pytest.mark.parametrize("name,builder,letter,params", WORKLOADS, ids=lambda w: None)
def test_generated_artifacts_encode_the_simulators_bytes(name, builder, letter, params):
    """Parse the constants out of the generated C/BSV text and re-execute them."""
    workload = builder(letter, params)
    partitioning = partition_design(workload.design, SW)
    spec = build_interface_spec(partitioning)
    if not spec.channels:
        pytest.skip(f"{name}: empty cut")
    fabric = CosimFabric(workload.design, backend="compiled", transport="compiled")
    routes_by_sync = {route[0].name: route for route in fabric._routes}
    transactors = generate_transactors(spec)
    marshal_sources = {dom: generate_sw_marshal_source(spec, dom) for dom in spec.sw_domains}

    clock = 0.0
    for ch in spec.channels:
        route = routes_by_sync[ch.name]
        sync, vc = route[0], route[1]
        link = spec.link(ch.producer, ch.consumer)
        value = sample_values(sync.ty)[3]
        wire = push_one(fabric, route, value, now=clock)
        clock += 1e6
        drain_one(fabric, route, now=clock)
        clock += 1e6
        payload_words = wire[1:]

        # Producer side: re-execute what the generated marshaler emits.
        if spec.is_hw(ch.producer):
            pack = _parsed_bsv_marshal(transactors[link.name]["tx"], ch)
            encoded = pack(sync.ty.pack(value))  # BSV pack() is the canonical packing
        else:
            pack = _parsed_c_pack(marshal_sources[ch.producer], ch)
            encoded = pack(payload_words)
        assert encoded == wire, f"{name}/{ch.name}: generated producer encodes different bytes"

        # Consumer side: the generated demarshaler accepts exactly this header.
        if spec.is_hw(ch.consumer):
            rx_vc, rx_fill = _parsed_bsv_dispatch(transactors[link.name]["rx"], ch)
            assert (rx_vc, rx_fill) == (ch.vc_id, ch.payload_words)
        else:
            expected_header = _parsed_c_unpack_header(marshal_sources[ch.consumer], ch)
            assert expected_header == wire[0], (
                f"{name}/{ch.name}: generated consumer rejects the simulator's header"
            )

        # And the layout the artifacts were rendered from is the simulator's.
        assert vc.layout is layout_for(sync.ty, ch.word_bits)
