"""Tests for the Vorbis back-end: kernels, reference, and partition equivalence."""

import math

import numpy as np
import pytest

from repro.apps.vorbis import kernels
from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import PARTITION_ORDER, PARTITIONS, build_partition
from repro.apps.vorbis.reference import decode, expected_checksum
from repro.baselines.handcoded import run_handcoded_vorbis, run_systemc_vorbis
from repro.core.domains import HW, SW
from repro.core.fixedpoint import FixComplex, FixedPoint
from repro.core.interpreter import Simulator
from repro.sim.cosim import Cosimulator

SMALL = VorbisParams(n_frames=3)


class TestKernels:
    def test_ifft_matches_numpy(self):
        points = 64
        data = tuple(
            FixComplex.from_floats(0.4 * math.cos(0.3 * i), 0.3 * math.sin(0.17 * i))
            for i in range(points)
        )
        out = kernels.natural_order(kernels.ifft_full(data))
        reference = np.fft.ifft(np.array([c.to_complex() for c in data]))
        got = np.array([c.to_complex() for c in out])
        assert np.max(np.abs(got - reference)) < 1e-5

    def test_staged_ifft_equals_full(self):
        points = 64
        data = tuple(FixComplex.from_floats(0.1 * ((i * 7) % 5 - 2), 0.05 * (i % 3)) for i in range(points))
        staged = data
        for stage in range(3):
            staged = kernels.ifft_rule_stage(stage, staged, 2)
        assert staged == kernels.ifft_full(data)

    @pytest.mark.parametrize("points", [8, 16, 32, 64, 128])
    def test_ifft_sizes(self, points):
        data = tuple(FixComplex.from_floats(0.2 * math.sin(i), 0.0) for i in range(points))
        out = kernels.natural_order(kernels.ifft_full(data))
        reference = np.fft.ifft(np.array([c.to_complex() for c in data]))
        got = np.array([c.to_complex() for c in out])
        assert np.max(np.abs(got - reference)) < 1e-4

    def test_ifft_linearity(self):
        points = 64
        a = tuple(FixComplex.from_floats(0.1 * (i % 7), 0.0) for i in range(points))
        b = tuple(FixComplex.from_floats(0.0, 0.05 * (i % 5)) for i in range(points))
        summed = tuple(x + y for x, y in zip(a, b))
        lhs = kernels.ifft_full(summed)
        rhs = tuple(x + y for x, y in zip(kernels.ifft_full(a), kernels.ifft_full(b)))
        for x, y in zip(lhs, rhs):
            assert abs((x - y).to_complex()) < 1e-5

    def test_bit_reverse(self):
        assert kernels.bit_reverse(0, 6) == 0
        assert kernels.bit_reverse(1, 6) == 32
        assert kernels.bit_reverse(0b000011, 6) == 0b110000
        # involution
        for i in range(64):
            assert kernels.bit_reverse(kernels.bit_reverse(i, 6), 6) == i

    def test_gen_frame_deterministic(self):
        assert kernels.gen_frame(3, 32) == kernels.gen_frame(3, 32)
        assert kernels.gen_frame(3, 32) != kernels.gen_frame(4, 32)

    def test_gen_frame_range(self):
        for value in kernels.gen_frame(0, 64):
            assert -1.0 < value.to_float() < 1.0

    def test_imdct_pre_shape(self):
        frame = kernels.gen_frame(0, 32)
        spectrum = kernels.imdct_pre(frame)
        assert len(spectrum) == 64

    def test_imdct_post_shape(self):
        frame = kernels.gen_frame(0, 32)
        samples = kernels.imdct_post(kernels.imdct_pre(frame))
        assert len(samples) == 64
        assert all(isinstance(s, FixedPoint) for s in samples)

    def test_window_overlap_shapes_and_state(self):
        n = 32
        prev = tuple(FixedPoint.zero() for _ in range(n))
        current = kernels.imdct_post(kernels.imdct_pre(kernels.gen_frame(1, n)))
        pcm, new_prev = kernels.window_overlap(prev, current)
        assert len(pcm) == n and len(new_prev) == n
        assert new_prev == tuple(current[n:])

    def test_window_rejects_bad_length(self):
        with pytest.raises(ValueError):
            kernels.window_overlap((FixedPoint.zero(),) * 4, (FixedPoint.zero(),) * 4)

    def test_audio_checksum_changes_with_data(self):
        pcm1 = kernels.gen_frame(0, 32)
        pcm2 = kernels.gen_frame(1, 32)
        assert kernels.audio_checksum(pcm1, 0) != kernels.audio_checksum(pcm2, 0)

    def test_kernel_costs_scale_with_frame_size(self):
        small, large = kernels.kernel_costs(16), kernels.kernel_costs(64)
        assert large["ifft_rule_stage"][0] > small["ifft_rule_stage"][0]
        for name, (sw, hw) in large.items():
            assert sw > 0 and hw > 0


class TestReference:
    def test_reference_is_deterministic(self):
        assert decode(SMALL).checksum == decode(SMALL).checksum

    def test_checksum_depends_on_frame_count(self):
        assert expected_checksum(VorbisParams(n_frames=2)) != expected_checksum(
            VorbisParams(n_frames=3)
        )

    def test_reference_cost_positive(self):
        result = decode(SMALL)
        assert result.cpu_cycles > 0
        assert len(result.pcm_frames) == SMALL.n_frames


class TestBackendDesign:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            VorbisParams(n=33)

    def test_unknown_stage_rejected(self):
        from repro.apps.vorbis.backend import build_backend

        with pytest.raises(ValueError):
            build_backend(SMALL, {"bogus": HW})

    def test_partition_placements_cover_all_stages(self):
        for letter, placement in PARTITIONS.items():
            assert set(placement) == {"ctrl", "imdct", "ifft", "window"}

    def test_f_is_full_software_and_e_full_hardware(self):
        assert all(dom == SW for dom in PARTITIONS["F"].values())
        assert all(dom == HW for dom in PARTITIONS["E"].values())

    def test_full_sw_design_runs_on_reference_simulator(self):
        """The unpartitioned design under one-rule-at-a-time semantics is bit-exact."""
        backend = build_partition("F", SMALL)
        sim = Simulator(backend.design)
        sim.run_until(lambda s: s.read(backend.frames_out) >= SMALL.n_frames, max_steps=100000)
        assert sim.read(backend.checksum) == expected_checksum(SMALL)

    @pytest.mark.parametrize("letter", PARTITION_ORDER)
    def test_every_partition_is_bit_exact(self, letter):
        """Latency-insensitive partitioning preserves behaviour (Section 4.3)."""
        backend = build_partition(letter, SMALL)
        cosim = Cosimulator(backend.design)
        result = cosim.run(backend.cosim_done, max_cycles=50_000_000)
        assert result.completed
        assert cosim.read_sw(backend.checksum) == expected_checksum(SMALL)

    def test_partition_a_crosses_at_the_ifft(self):
        backend = build_partition("A", SMALL)
        from repro.core.partition import partition_design

        cut_names = {s.name for s in partition_design(backend.design, SW).cut}
        assert cut_names == {"q_pre", "q_ifft"}

    def test_partition_e_crosses_at_frontend_and_audio(self):
        backend = build_partition("E", SMALL)
        from repro.core.partition import partition_design

        cut_names = {s.name for s in partition_design(backend.design, SW).cut}
        assert cut_names == {"q_in", "q_pcm"}


class TestBaselines:
    def test_handcoded_matches_reference(self):
        assert run_handcoded_vorbis(SMALL).checksum == expected_checksum(SMALL)

    def test_systemc_matches_reference(self):
        assert run_systemc_vorbis(SMALL).checksum == expected_checksum(SMALL)

    def test_systemc_slower_than_handcoded(self):
        handcoded = run_handcoded_vorbis(SMALL)
        systemc = run_systemc_vorbis(SMALL)
        assert systemc.fpga_cycles() > 1.5 * handcoded.fpga_cycles()
