"""Unit tests for the source-lowering tier's debuggability contract.

The generated modules are first-class debuggable artifacts: they can be
dumped to disk (``REPRO_DUMP_SOURCE`` or :meth:`GeneratedModule.dump`),
tracebacks through generated code show the real generated source lines
(linecache registration), and generation is deterministic -- the same
design elaborates to byte-identical source every time.
"""

import linecache
import traceback

import pytest

from repro.core.expr import Const, KernelCall
from repro.core.interpreter import Simulator
from repro.core.module import Design, Module
from repro.core.types import UIntT

from test_compiled_backend import build_fifo_pipeline, build_kitchen_sink


def _source_sim(builder=build_fifo_pipeline):
    return Simulator(builder(), backend="source")


# --------------------------------------------------------------------------
# dumping generated source
# --------------------------------------------------------------------------


class TestDumpSource:
    def test_env_var_dumps_on_generation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DUMP_SOURCE", str(tmp_path))
        sim = _source_sim()
        dumped = sorted(p.name for p in tmp_path.iterdir())
        assert any(name.endswith(".py") for name in dumped)
        # The dumped text is exactly the module that was exec'd.
        expected = sim._gen.source
        assert any(
            p.read_text() == expected for p in tmp_path.iterdir() if p.suffix == ".py"
        )

    def test_explicit_dump_returns_sanitised_path(self, tmp_path):
        sim = _source_sim()
        path = sim._gen.dump(str(tmp_path))
        assert path.endswith(".py")
        with open(path) as fh:
            assert fh.read() == sim._gen.source
        # Only filename-safe characters survive sanitisation.
        name = path.rsplit("/", 1)[-1]
        assert all(c.isalnum() or c in "._-" for c in name)

    def test_no_dump_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_DUMP_SOURCE", raising=False)
        _source_sim()
        assert list(tmp_path.iterdir()) == []


# --------------------------------------------------------------------------
# tracebacks through generated code
# --------------------------------------------------------------------------


def build_exploding_design():
    top = Module("top")
    out = top.add_register("out", UIntT(32), 0)
    top.add_rule(
        "boom",
        out.write(KernelCall("explode", lambda: 1 // 0, [], 1, 1)).when(Const(True)),
    )
    return Design(top, name="exploding")


class TestTracebacks:
    def test_traceback_shows_generated_source_lines(self):
        sim = Simulator(build_exploding_design(), backend="source")
        try:
            sim.run(5)
            raise AssertionError("kernel should have raised")
        except ZeroDivisionError:
            tb = traceback.format_exc()
        # The generated frame is attributed to its pseudo-filename...
        assert 'File "<repro-generated:exploding.rules' in tb
        # ...and linecache resolves the actual generated line under it:
        # the source line shown in the traceback is real generated code.
        frame_lines = [
            line.strip()
            for line, prev in zip(tb.splitlines()[1:], tb.splitlines())
            if "<repro-generated:" in prev
        ]
        assert frame_lines
        assert all(line in sim._gen.source for line in frame_lines)

    def test_linecache_registration(self):
        sim = _source_sim(build_kitchen_sink)
        gen = sim._gen
        assert linecache.getlines(gen.filename) == gen.source.splitlines(True)


# --------------------------------------------------------------------------
# deterministic generation
# --------------------------------------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize(
        "builder", [build_fifo_pipeline, build_kitchen_sink], ids=lambda b: b.__name__
    )
    def test_same_design_generates_identical_source(self, builder):
        first = Simulator(builder(), backend="source")._gen
        second = Simulator(builder(), backend="source")._gen
        assert first.source == second.source
        assert first.filename == second.filename

    def test_fabric_supersteps_deterministic(self):
        from repro.apps.vorbis import partitions as vp
        from repro.apps.vorbis.params import VorbisParams
        from repro.sim.cosim import CosimFabric

        sources = []
        for _ in range(2):
            wl = vp.build_partition("B", VorbisParams(n_frames=2))
            fabric = CosimFabric(wl.design, backend="source", transport="source")
            per_engine = {}
            for domain in fabric.domains:
                engine = fabric.engine(domain.name)
                per_engine[domain.name] = (
                    engine._gen.source if engine._gen is not None else None,
                    engine._step_gen.source if engine._step_gen is not None else None,
                )
            sources.append(per_engine)
        assert sources[0] == sources[1]
