"""Tests for the N-domain co-simulation fabric and its transport dataplane.

Four groups:

* **Golden differential** -- the two-partition compatibility wrapper over
  the fabric must reproduce the pre-refactor ``CosimResult`` *bit for bit*
  on every fig13 workload, for both execution backends.  The reference is
  ``tests/golden/fig13_cosim.json``, captured at the last pre-fabric
  revision (see ``tests/golden/regen_fig13_golden.py``).
* **N-domain fabric** -- ≥3-domain designs run end-to-end, with per-route
  links, correct register ownership, and backend/transport equivalence.
* **Synchronizer specialisation** -- a ``SyncFifo`` whose domains coincide
  after substitution degrades to a plain FIFO: off the cut, out of the
  channel, owned by its (single) domain.
* **Sharding** -- the multiprocess sweep runner returns results bitwise
  identical to serial execution.
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.core.action import par
from repro.core.domains import HW, SW, Domain, DomainVar, substitute_domains
from repro.core.expr import BinOp, Const, KernelCall, RegRead
from repro.core.module import Design, Module
from repro.core.partition import partition_design
from repro.core.synchronizers import (
    SyncFifo,
    cross_domain_synchronizers,
    specialize_synchronizers,
)
from repro.core.types import UIntT
from repro.platform.channel import ChannelParams, Topology
from repro.platform.platform import Platform
from repro.sim.cosim import CosimFabric, Cosimulator, default_engine_kinds
from repro.sim.shard import SweepTask, merge_results, run_sweep

GOLDEN_PATH = Path(__file__).parent / "golden" / "fig13_cosim.json"

#: Golden capture sizes (must match regen_fig13_golden.py).
GOLDEN_FIELDS = (
    "design_name",
    "fpga_cycles",
    "completed",
    "sw_busy_fpga_cycles",
    "sw_cpu_cycles",
    "sw_cpu_cycles_wasted",
    "sw_cpu_cycles_driver",
    "sw_firings",
    "sw_guard_failures",
    "hw_firings",
    "hw_active_cycles",
    "channel_messages",
    "channel_words",
    "channel_busy_cycles",
    "fire_counts",
    "vc_stats",
)


def _golden():
    return json.loads(GOLDEN_PATH.read_text())


def _vorbis(letter, n_frames=4):
    from repro.apps.vorbis import partitions as vp
    from repro.apps.vorbis.params import VorbisParams

    return vp.build_partition(letter, VorbisParams(n_frames=n_frames))


def _raytracer(letter):
    from repro.apps.raytracer import partitions as rp
    from repro.apps.raytracer.params import RayTracerParams

    return rp.build_partition(
        letter, RayTracerParams(n_triangles=24, image_width=3, image_height=3)
    )


def _snapshot(workload, backend, transport=None):
    cosim = Cosimulator(workload.design, backend=backend, transport=transport)
    result = cosim.run(workload.cosim_done, max_cycles=500_000_000)
    full = json.loads(json.dumps(asdict(result)))
    entry = {field: full[field] for field in GOLDEN_FIELDS}
    entry["stores"] = {
        reg.full_name: repr(cosim.read(reg)) for reg in workload.design.all_registers()
    }
    return entry


# --------------------------------------------------------------------------
# golden differential: wrapper over the fabric == pre-refactor Cosimulator
# --------------------------------------------------------------------------


class TestGoldenDifferential:
    @pytest.mark.parametrize("backend", ["interp", "compiled", "source"])
    @pytest.mark.parametrize("letter", ["A", "B", "C", "D", "E", "F"])
    def test_vorbis_matches_prerefactor(self, letter, backend):
        # The golden file predates the source tier; source must reproduce
        # the same bits the compiled backend was recorded with.
        golden = _golden()[f"vorbis_{letter}"]["compiled" if backend == "source" else backend]
        assert _snapshot(_vorbis(letter), backend) == golden

    @pytest.mark.parametrize("backend", ["interp", "compiled", "source"])
    @pytest.mark.parametrize("letter", ["A", "B", "C", "D"])
    def test_raytracer_matches_prerefactor(self, letter, backend):
        golden = _golden()[f"raytracer_{letter}"]["compiled" if backend == "source" else backend]
        assert _snapshot(_raytracer(letter), backend) == golden

    @pytest.mark.parametrize("letter", ["B", "C"])
    def test_transport_backends_bitwise_identical(self, letter):
        """Compiled (batch-drain) and source-lowered transports == the
        interpreted reference transport, independently of the rule backend."""
        interp_t = _snapshot(_vorbis(letter), "compiled", transport="interp")
        compiled_t = _snapshot(_vorbis(letter), "compiled", transport="compiled")
        source_t = _snapshot(_vorbis(letter), "compiled", transport="source")
        assert interp_t == compiled_t
        assert interp_t == source_t
        assert interp_t == _golden()[f"vorbis_{letter}"]["compiled"]


# --------------------------------------------------------------------------
# N-domain fabric
# --------------------------------------------------------------------------

#: Three concrete domains for the synthetic pipeline below.
HW_A = Domain("HW_STAGE_A")
HW_B = Domain("HW_STAGE_B")


def build_three_domain_pipeline(n_items=8, depth=2):
    """SW source -> HW_A square -> HW_B add3 -> SW sink, one sync per hop."""
    top = Module("top")
    src = top.add_submodule(Module("src", domain=SW))
    sta = top.add_submodule(Module("sta", domain=HW_A))
    stb = top.add_submodule(Module("stb", domain=HW_B))
    q_a = top.add_submodule(SyncFifo("q_a", UIntT(32), SW, HW_A, depth=depth))
    q_b = top.add_submodule(SyncFifo("q_b", UIntT(32), HW_A, HW_B, depth=depth))
    q_out = top.add_submodule(SyncFifo("q_out", UIntT(32), HW_B, SW, depth=depth))
    cnt = src.add_register("cnt", UIntT(32), 0)
    acc = src.add_register("acc", UIntT(32), 0)
    ndone = src.add_register("ndone", UIntT(32), 0)
    mark_a = sta.add_register("mark_a", UIntT(32), 0)
    mark_b = stb.add_register("mark_b", UIntT(32), 0)
    src.add_rule(
        "produce",
        par(q_a.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
        .when(BinOp("<", RegRead(cnt), Const(n_items))),
    )
    square = KernelCall("square", lambda x: x * x, [q_a.value("first")], sw_cycles=40, hw_cycles=4)
    sta.add_rule(
        "stage_a",
        par(
            q_b.call("enq", square),
            q_a.call("deq"),
            mark_a.write(BinOp("+", RegRead(mark_a), Const(1))),
        ),
    )
    add3 = KernelCall("add3", lambda x: x + 3, [q_b.value("first")], sw_cycles=10, hw_cycles=1)
    stb.add_rule(
        "stage_b",
        par(
            q_out.call("enq", add3),
            q_b.call("deq"),
            mark_b.write(BinOp("+", RegRead(mark_b), Const(1))),
        ),
    )
    src.add_rule(
        "collect",
        par(
            acc.write(BinOp("+", RegRead(acc), q_out.value("first"))),
            q_out.call("deq"),
            ndone.write(BinOp("+", RegRead(ndone), Const(1))),
        ),
    )
    design = Design(top, "three_domain")
    regs = {"cnt": cnt, "acc": acc, "ndone": ndone, "mark_a": mark_a, "mark_b": mark_b}
    return design, regs, n_items


class TestThreeDomainFabric:
    def _run(self, backend="compiled", transport=None, topology=None, platform=None):
        design, regs, n = build_three_domain_pipeline()
        fabric = CosimFabric(
            design, backend=backend, transport=transport, topology=topology, platform=platform
        )
        result = fabric.run(lambda c: c.read(regs["ndone"]) >= n)
        return fabric, regs, result, n

    def test_engine_per_domain(self):
        fabric, _, _, _ = self._run()
        assert sorted(d.name for d in fabric.domains) == ["HW_STAGE_A", "HW_STAGE_B", "SW"]
        assert fabric.engine_kinds == {"HW_STAGE_A": "hw", "HW_STAGE_B": "hw", "SW": "sw"}
        # Hardware engines step before the software engine.
        assert [d.name for d in fabric.domains[:2]] == ["HW_STAGE_A", "HW_STAGE_B"]

    def test_correct_result_through_three_domains(self):
        fabric, regs, result, n = self._run()
        assert result.completed
        assert fabric.read(regs["acc"]) == sum(i * i + 3 for i in range(n))
        assert result.fire_counts["top.sta.stage_a"] == n
        assert result.fire_counts["top.stb.stage_b"] == n

    def test_one_link_per_route_with_own_traffic(self):
        fabric, _, result, n = self._run()
        names = [link.name for link in fabric.topology.links]
        assert names == ["SW->HW_STAGE_A", "HW_STAGE_A->HW_STAGE_B", "HW_STAGE_B->SW"]
        for src, dst in [("SW", "HW_STAGE_A"), ("HW_STAGE_A", "HW_STAGE_B"), ("HW_STAGE_B", "SW")]:
            assert fabric.topology.direction(src, dst).stats.messages == n
        assert result.channel_messages == 3 * n

    def test_register_ownership_resolved_per_domain(self):
        """The owner of a register is its partition -- not a binary hw/sw guess."""
        fabric, regs, _, n = self._run()
        assert fabric.read(regs["mark_a"]) == n
        assert fabric.read(regs["mark_b"]) == n
        # The authoritative copies live in the owning engines' stores.
        assert fabric.engine("HW_STAGE_A").store[regs["mark_a"]] == n
        assert fabric.engine("HW_STAGE_B").store[regs["mark_b"]] == n
        # The SW engine's (stale) copy of HW_B state never advanced: reading
        # through the fabric must not have returned it.
        assert fabric.engine("SW").store[regs["mark_b"]] == 0

    def test_backends_bitwise_identical(self):
        results = {}
        for backend in ("interp", "compiled", "source"):
            _, _, result, _ = self._run(backend=backend)
            results[backend] = asdict(result)
        assert results["compiled"] == results["interp"]
        assert results["source"] == results["interp"]

    def test_transport_modes_bitwise_identical(self):
        results = {}
        for transport in ("interp", "compiled", "source"):
            _, _, result, _ = self._run(backend="compiled", transport=transport)
            results[transport] = asdict(result)
        assert results["compiled"] == results["interp"]
        assert results["source"] == results["interp"]

    def test_per_link_parameters_shape_timing(self):
        """A slow HW_A->HW_B lane lengthens the run without changing results."""
        design, regs, n = build_three_domain_pipeline()
        fast = CosimFabric(design, backend="compiled")
        r_fast = fast.run(lambda c: c.read(regs["ndone"]) >= n)

        design2, regs2, _ = build_three_domain_pipeline()
        slow_lane = ChannelParams(one_way_latency_cycles=2000)
        slow = CosimFabric(
            design2,
            backend="compiled",
            link_params={("HW_STAGE_A", "HW_STAGE_B"): slow_lane},
        )
        r_slow = slow.run(lambda c: c.read(regs2["ndone"]) >= n)
        assert slow.read(regs2["acc"]) == fast.read(regs["acc"])
        assert r_slow.fpga_cycles > r_fast.fpga_cycles
        assert slow.topology.link("HW_STAGE_A", "HW_STAGE_B").params is slow_lane

    def test_domain_stats_cover_all_partitions(self):
        fabric, _, result, n = self._run()
        assert set(result.domain_stats) == {"SW", "HW_STAGE_A", "HW_STAGE_B"}
        assert result.domain_stats["HW_STAGE_A"]["kind"] == "hw"
        assert result.domain_stats["HW_STAGE_A"]["firings"] == n
        assert result.domain_stats["SW"]["kind"] == "sw"

    def test_deep_fifo_batch_drain(self):
        """A deep synchronizer drains in batches without losing order/credits."""
        design, regs, n = build_three_domain_pipeline(n_items=64, depth=64)
        fabric = CosimFabric(design, backend="compiled")
        result = fabric.run(lambda c: c.read(regs["ndone"]) >= n)
        assert result.completed
        assert fabric.read(regs["acc"]) == sum(i * i + 3 for i in range(n))

    def test_default_engine_kinds_convention(self):
        kinds = default_engine_kinds([SW, HW, Domain("HW_FOO"), Domain("DSP")])
        assert kinds == {"SW": "sw", "HW": "hw", "HW_FOO": "hw", "DSP": "sw"}

    def test_explicit_engine_kinds_override(self):
        """A domain not named HW* can still be placed on the hardware engine."""
        top = Module("top")
        src = top.add_submodule(Module("src", domain=SW))
        dsp = top.add_submodule(Module("dsp", domain=Domain("DSP")))
        q = top.add_submodule(SyncFifo("q", UIntT(32), SW, Domain("DSP"), depth=2))
        cnt = src.add_register("cnt", UIntT(32), 0)
        total = dsp.add_register("total", UIntT(32), 0)
        src.add_rule(
            "produce",
            par(q.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
            .when(BinOp("<", RegRead(cnt), Const(3))),
        )
        dsp.add_rule(
            "consume",
            par(total.write(BinOp("+", RegRead(total), q.value("first"))), q.call("deq")),
        )
        fabric = CosimFabric(Design(top, "dsp"), engine_kinds={"DSP": "hw"}, backend="compiled")
        result = fabric.run(lambda c: c.read(total) >= 3)
        assert result.completed
        assert result.hw_firings == 3
        assert fabric.read(total) == 0 + 1 + 2


class TestMultiDomainVorbis:
    @pytest.mark.parametrize("letter", ["G", "H"])
    def test_multi_domain_checksum_matches_two_partition(self, letter):
        """Any partitioning of the same workload emits the same PCM checksum."""
        from repro.apps.vorbis import partitions as vp

        multi = vp.build_multi_partition(letter, _vorbis("F").params)
        fabric = CosimFabric(multi.design, backend="compiled")
        result = fabric.run(multi.cosim_done, max_cycles=500_000_000)
        assert result.completed

        ref = _vorbis("F")
        cosim = Cosimulator(ref.design, backend="compiled")
        cosim.run(ref.cosim_done, max_cycles=500_000_000)
        assert fabric.read(multi.checksum) == cosim.read(ref.checksum)

    def test_vorbis_g_backends_bitwise_identical(self):
        from repro.apps.vorbis import partitions as vp
        from repro.apps.vorbis.params import VorbisParams

        results = {}
        for backend in ("interp", "compiled", "source"):
            wl = vp.build_multi_partition("G", VorbisParams(n_frames=4))
            fabric = CosimFabric(wl.design, backend=backend)
            results[backend] = asdict(fabric.run(wl.cosim_done, max_cycles=500_000_000))
        assert results["compiled"] == results["interp"]
        assert results["source"] == results["interp"]

    def test_vorbis_g_routes(self):
        from repro.apps.vorbis import partitions as vp
        from repro.apps.vorbis.params import VorbisParams

        wl = vp.build_multi_partition("G", VorbisParams(n_frames=2))
        fabric = CosimFabric(wl.design, backend="compiled")
        pairs = fabric.partitioning.route_pairs()
        assert ("SW", "HW_IMDCT") in pairs
        assert ("HW_IMDCT", "HW_WIN") in pairs
        assert ("HW_WIN", "SW") in pairs


# --------------------------------------------------------------------------
# synchronizer specialisation (same-domain sync degrades to a plain FIFO)
# --------------------------------------------------------------------------


class TestSynchronizerSpecialisation:
    def _poly_design(self):
        """Producer SW, consumer domain is a variable ``a`` (Sync#(t, SW, a))."""
        var = DomainVar("a")
        top = Module("top")
        producer = top.add_submodule(Module("producer", domain=SW))
        consumer = top.add_submodule(Module("consumer", domain=var))
        sync = top.add_submodule(SyncFifo("q", UIntT(32), SW, var, depth=2))
        cnt = producer.add_register("cnt", UIntT(32), 0)
        acc = consumer.add_register("acc", UIntT(32), 0)
        producer.add_rule(
            "produce",
            par(sync.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
            .when(BinOp("<", RegRead(cnt), Const(5))),
        )
        consumer.add_rule(
            "consume",
            par(acc.write(BinOp("+", RegRead(acc), sync.value("first"))), sync.call("deq")),
        )
        return Design(top, "poly"), sync, acc

    def test_coinciding_domains_leave_the_cut(self):
        design, sync, acc = self._poly_design()
        assert sync.is_cross_domain  # variable: conservatively on the cut
        remaining = specialize_synchronizers(design, {"a": SW})
        substitute_domains(design, {"a": SW})
        assert remaining == []
        assert not sync.is_cross_domain
        assert cross_domain_synchronizers(design) == []

    def test_degraded_sync_is_out_of_the_partition_cut(self):
        design, sync, acc = self._poly_design()
        specialize_synchronizers(design, {"a": SW})
        substitute_domains(design, {"a": SW})
        partitioning = partition_design(design, SW)
        assert partitioning.cut == []
        assert list(partitioning.programs) == [SW]

    def test_degraded_sync_uses_no_channel(self):
        """After specialisation the FIFO is local: zero messages, same data."""
        design, sync, acc = self._poly_design()
        specialize_synchronizers(design, {"a": SW})
        substitute_domains(design, {"a": SW})
        cosim = Cosimulator(design, backend="compiled")
        result = cosim.run(lambda c: c.read(acc) >= sum(range(5)))
        assert result.completed
        assert result.channel_messages == 0
        assert result.vc_stats == {}
        assert cosim.read(acc) == sum(range(5))

    def test_specialised_to_hardware_crosses_the_cut(self):
        """The same polymorphic design, instantiated the other way, does sync."""
        design, sync, acc = self._poly_design()
        remaining = specialize_synchronizers(design, {"a": HW})
        substitute_domains(design, {"a": HW})
        assert remaining == [sync]
        cosim = Cosimulator(design, backend="compiled")
        result = cosim.run(lambda c: c.read(acc) >= sum(range(5)))
        assert result.completed
        assert result.channel_messages == 5
        assert cosim.read(acc) == sum(range(5))


# --------------------------------------------------------------------------
# partitioning topology helpers
# --------------------------------------------------------------------------


class TestPartitioningTopologyHelpers:
    def test_route_pairs_two_domain(self):
        design, regs, _ = build_three_domain_pipeline()
        partitioning = partition_design(design, SW)
        assert partitioning.route_pairs() == [
            ("SW", "HW_STAGE_A"),
            ("HW_STAGE_A", "HW_STAGE_B"),
            ("HW_STAGE_B", "SW"),
        ]

    def test_independent_groups_single_component(self):
        design, _, _ = build_three_domain_pipeline()
        groups = partition_design(design, SW).independent_groups()
        assert [[d.name for d in g] for g in groups] == [["HW_STAGE_A", "HW_STAGE_B", "SW"]]

    def test_independent_groups_split(self):
        """Two unconnected domain islands may shard into separate fabrics."""
        island_a, island_b = Domain("HW_ISLA"), Domain("HW_ISLB")
        top = Module("top")
        ma = top.add_submodule(Module("ma", domain=island_a))
        mb = top.add_submodule(Module("mb", domain=island_b))
        ra = ma.add_register("ra", UIntT(32), 0)
        rb = mb.add_register("rb", UIntT(32), 0)
        ma.add_rule(
            "tick_a",
            ra.write(BinOp("+", RegRead(ra), Const(1))).when(BinOp("<", RegRead(ra), Const(3))),
        )
        mb.add_rule(
            "tick_b",
            rb.write(BinOp("+", RegRead(rb), Const(1))).when(BinOp("<", RegRead(rb), Const(3))),
        )
        partitioning = partition_design(Design(top, "islands"), SW)
        groups = partitioning.independent_groups()
        assert [[d.name for d in g] for g in groups] == [["HW_ISLA"], ["HW_ISLB"]]

    def test_topology_rejects_duplicate_links(self):
        topo = Topology()
        topo.add_link("A", "B", ChannelParams())
        with pytest.raises(ValueError):
            topo.add_link("A", "B", ChannelParams())

    def test_topology_unknown_route_raises(self):
        topo = Platform.ml507().topology_for([("A", "B")])
        with pytest.raises(KeyError):
            topo.direction("B", "A")


# --------------------------------------------------------------------------
# multiprocess sweep sharding
# --------------------------------------------------------------------------


def _sweep_tasks(n_frames=3):
    from repro.apps.vorbis import partitions as vp
    from repro.apps.vorbis.params import VorbisParams

    params = VorbisParams(n_frames=n_frames)
    tasks = [
        SweepTask(name=f"vorbis_{letter}", builder=vp.build_partition, args=(letter, params))
        for letter in ("B", "E", "F")
    ]
    tasks.append(
        SweepTask(
            name="vorbis_G",
            builder=vp.build_multi_partition,
            args=("G", params),
            engine_kinds={"HW_IMDCT": "hw", "HW_WIN": "hw", "SW": "sw"},
        )
    )
    return tasks


class TestShardedSweep:
    def test_parallel_sweep_bitwise_identical_to_serial(self):
        tasks = _sweep_tasks()
        serial = run_sweep(tasks, processes=1)
        parallel = run_sweep(tasks, processes=2)
        assert set(serial.results) == set(parallel.results)
        for name in serial.results:
            assert asdict(serial.results[name]) == asdict(parallel.results[name]), name

    def test_sweep_report_accounting(self):
        report = run_sweep(_sweep_tasks(), processes=2)
        assert len(report.outcomes) == 4
        assert report.wall_seconds > 0
        assert report.worker_seconds >= max(o.wall_seconds for o in report.outcomes.values())
        assert "tasks on" in report.table()

    def test_merge_results(self):
        report = run_sweep(_sweep_tasks(), processes=1)
        merged = merge_results(report.results)
        assert merged["tasks"] == 4
        assert merged["completed"] == 4
        assert merged["channel_messages"] == sum(
            r.channel_messages for r in report.results.values()
        )

    def test_duplicate_task_names_rejected(self):
        tasks = _sweep_tasks()
        tasks[1] = SweepTask(name=tasks[0].name, builder=tasks[1].builder, args=tasks[1].args)
        with pytest.raises(ValueError):
            run_sweep(tasks, processes=1)
