"""Tests for read/write-set analysis, conflict detection and the two schedulers."""

import pytest

from repro.core.action import Par, par
from repro.core.analysis import (
    ConflictMatrix,
    conflicts,
    dataflow_edges,
    dataflow_order,
    modules_touched,
    primitive_method_calls,
    read_set,
    rule_read_set,
    rule_write_set,
    write_set,
)
from repro.core.expr import BinOp, Const, RegRead
from repro.core.module import Design, Module
from repro.core.primitives import Fifo, PulseWire, RegFile
from repro.core.scheduler import HwSchedule, SwSchedule
from repro.core.types import UIntT


def build_pipeline(n_stages=3):
    """A linear FIFO pipeline: source -> q0 -> q1 -> ... -> sink."""
    top = Module("top")
    queues = [top.add_submodule(Fifo(f"q{i}", UIntT(32), depth=2)) for i in range(n_stages)]
    cnt = top.add_register("cnt", UIntT(32), 0)
    out = top.add_register("out", UIntT(32), 0)
    top.add_rule(
        "source",
        par(queues[0].call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
        .when(BinOp("<", RegRead(cnt), Const(100))),
    )
    for i in range(n_stages - 1):
        top.add_rule(
            f"stage{i}",
            par(queues[i + 1].call("enq", queues[i].value("first")), queues[i].call("deq")),
        )
    top.add_rule(
        "sink",
        par(out.write(queues[-1].value("first")), queues[-1].call("deq")),
    )
    return Design(top), queues, cnt, out


class TestReadWriteSets:
    def test_regwrite_write_set(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        assert write_set(a.write(Const(1))) == {a}
        assert read_set(a.write(Const(1))) == set()

    def test_regread_read_set(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        b = top.add_register("b", UIntT(32), 0)
        action = a.write(RegRead(b))
        assert read_set(action) == {b}
        assert write_set(action) == {a}

    def test_fifo_methods_expand_to_internal_state(self):
        top = Module("top")
        fifo = top.add_submodule(Fifo("q", UIntT(32)))
        assert write_set(fifo.call("enq", Const(1))) == {fifo.data}
        assert read_set(fifo.value("first")) == {fifo.data}

    def test_user_method_recursion(self):
        top = Module("top")
        sub = top.add_submodule(Module("sub"))
        s = sub.add_register("s", UIntT(32), 0)
        sub.add_method("poke", "action", params=["x"], body=s.write(RegRead(s)))
        action = sub.call("poke", Const(1))
        assert write_set(action) == {s}
        assert read_set(action) == {s}

    def test_primitive_method_calls_tracking(self):
        design, queues, cnt, out = build_pipeline()
        rule = design.find_rule("stage0")
        calls = primitive_method_calls(rule)
        assert calls[queues[0]] == {"first", "deq"}
        assert calls[queues[1]] == {"enq"}

    def test_modules_touched(self):
        design, queues, cnt, out = build_pipeline()
        rule = design.find_rule("source")
        touched = modules_touched(rule)
        assert queues[0] in touched


class TestConflicts:
    def test_disjoint_rules_do_not_conflict(self):
        design, queues, cnt, out = build_pipeline()
        assert not conflicts(design.find_rule("source"), design.find_rule("sink"))

    def test_rule_conflicts_with_itself(self):
        design, *_ = build_pipeline()
        rule = design.find_rule("source")
        assert conflicts(rule, rule)

    def test_fifo_enq_deq_are_concurrent(self):
        """Adjacent pipeline stages may fire in the same cycle (pipeline FIFO)."""
        design, *_ = build_pipeline()
        assert not conflicts(design.find_rule("stage0"), design.find_rule("stage1"))

    def test_two_writers_of_one_register_conflict(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        r1 = top.add_rule("r1", a.write(Const(1)))
        r2 = top.add_rule("r2", a.write(Const(2)))
        assert conflicts(r1, r2)

    def test_two_enqueuers_of_one_fifo_conflict(self):
        top = Module("top")
        fifo = top.add_submodule(Fifo("q", UIntT(32)))
        r1 = top.add_rule("r1", fifo.call("enq", Const(1)))
        r2 = top.add_rule("r2", fifo.call("enq", Const(2)))
        assert conflicts(r1, r2)

    def test_conflict_matrix(self):
        design, *_ = build_pipeline()
        matrix = ConflictMatrix(design.all_rules())
        r1, r2 = design.find_rule("stage0"), design.find_rule("stage1")
        assert not matrix.conflict(r1, r2)
        assert matrix.conflict(r1, r1)


class TestDataflow:
    def test_dataflow_edges_follow_fifos(self):
        design, queues, cnt, out = build_pipeline()
        edges = dataflow_edges(design.all_rules())
        names = {(a.name, b.name) for a, b in edges}
        assert ("source", "stage0") in names
        assert ("stage0", "stage1") in names
        assert ("stage1", "sink") in names

    def test_dataflow_order_is_topological(self):
        design, *_ = build_pipeline()
        order = [r.name for r in dataflow_order(design.all_rules())]
        assert order.index("source") < order.index("stage0") < order.index("sink")

    def test_dataflow_order_handles_cycles(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        b = top.add_register("b", UIntT(32), 0)
        top.add_rule("r1", a.write(RegRead(b)))
        top.add_rule("r2", b.write(RegRead(a)))
        order = dataflow_order(list(top.rules))
        assert len(order) == 2  # cycle broken, both present


class TestSchedulers:
    def test_hw_schedule_selects_non_conflicting_set(self):
        design, *_ = build_pipeline()
        rules = design.all_rules()
        schedule = HwSchedule(rules)
        chosen = schedule.select(rules)
        # The whole pipeline can fire in one cycle (no conflicts).
        assert set(chosen) == set(rules)

    def test_hw_schedule_excludes_conflicting_rules(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        r1 = top.add_rule("r1", a.write(Const(1)))
        r2 = top.add_rule("r2", a.write(Const(2)))
        schedule = HwSchedule([r1, r2])
        chosen = schedule.select([r1, r2])
        assert len(chosen) == 1

    def test_hw_schedule_respects_urgency(self):
        top = Module("top")
        a = top.add_register("a", UIntT(32), 0)
        r1 = top.add_rule("low", a.write(Const(1)), urgency=0)
        r2 = top.add_rule("high", a.write(Const(2)), urgency=5)
        schedule = HwSchedule([r1, r2])
        assert schedule.select([r1, r2]) == [r2]

    def test_sw_schedule_prefers_successors(self):
        design, *_ = build_pipeline()
        rules = design.all_rules()
        schedule = SwSchedule(rules)
        source = design.find_rule("source")
        candidates = schedule.candidates(source)
        assert candidates[0].name == "stage0"

    def test_sw_schedule_initial_order_is_dataflow(self):
        design, *_ = build_pipeline()
        schedule = SwSchedule(design.all_rules())
        names = [r.name for r in schedule.candidates(None)]
        assert names.index("source") < names.index("sink")


class TestPrimitives:
    def test_regfile_sub_and_upd(self):
        from repro.core.interpreter import Simulator

        top = Module("top")
        rf = top.add_submodule(RegFile("mem", UIntT(32), size=4, init=[1, 2, 3, 4]))
        out = top.add_register("out", UIntT(32), 0)
        done = top.add_register("done", UIntT(32), 0)
        top.add_rule(
            "read_and_update",
            par(out.write(rf.value("sub", Const(2))), rf.call("upd", Const(0), Const(99)),
                done.write(Const(1))).when(BinOp("==", RegRead(done), Const(0))),
        )
        sim = Simulator(Design(top))
        sim.run(10)
        assert sim.read(out) == 3
        assert sim.store[rf.mem][0] == 99

    def test_regfile_bad_size_rejected(self):
        from repro.core.errors import ElaborationError

        with pytest.raises(ElaborationError):
            RegFile("mem", UIntT(32), size=0)

    def test_regfile_init_length_checked(self):
        from repro.core.errors import ElaborationError

        with pytest.raises(ElaborationError):
            RegFile("mem", UIntT(32), size=4, init=[1, 2])

    def test_fifo_depth_and_guards(self):
        from repro.core.interpreter import Simulator

        top = Module("top")
        fifo = top.add_submodule(Fifo("q", UIntT(32), depth=1))
        cnt = top.add_register("cnt", UIntT(32), 0)
        top.add_rule(
            "fill",
            par(fifo.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1)))),
        )
        sim = Simulator(Design(top))
        fired = sim.run(10)
        assert fired == 1  # second enq blocks on the full FIFO
        assert sim.store[fifo.data] == (0,)

    def test_pulsewire(self):
        from repro.core.interpreter import Simulator

        top = Module("top")
        wire = top.add_submodule(PulseWire("pw"))
        seen = top.add_register("seen", UIntT(32), 0)
        top.add_rule("sender", wire.call("send").when(BinOp("==", RegRead(seen), Const(0))))
        top.add_rule(
            "receiver",
            par(seen.write(Const(1)), wire.call("clear")).when(wire.value("read")),
        )
        sim = Simulator(Design(top))
        sim.run(10)
        assert sim.read(seen) == 1
