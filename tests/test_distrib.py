"""Tests for distributed co-simulation (``repro.sim.distrib``).

Four groups:

* **Differential matrix** -- ``run_distributed`` must be bitwise identical
  to ``scheduler="grouped"`` on a fresh elaboration, across backends
  (interp/compiled), placements (group/domain) and carriers (shm/socket),
  with real framed wire words crossing process boundaries whenever a cut
  link spans two members.
* **Scheduler dispatch** -- ``CosimFabric``/``Cosimulator``
  ``run(scheduler="distributed")`` with a bound builder spec, and the
  error when the spec is missing.
* **Faults** -- a worker that dies mid-run surfaces as a
  ``SimulationError`` naming the member and exit code; a full carrier ring
  backpressures without perturbing simulated timing (bitwise-equal result,
  ``full_retries`` counted, every sent message delivered); undersized
  rings are rejected up front.
* **Pool shutdown** -- ``_collect_pool_results`` regression: a cleanly
  exited pool with results still buffered in the queue's feeder pipe is
  not a dead pool.
"""

import multiprocessing
import os
import queue
from dataclasses import asdict

import pytest

from repro.apps.vorbis import partitions as vp
from repro.apps.vorbis.params import VorbisParams
from repro.core.action import par
from repro.core.domains import SW, Domain
from repro.core.errors import SimulationError
from repro.core.expr import BinOp, Const, KernelCall, RegRead
from repro.core.module import Design, Module
from repro.core.synchronizers import SyncFifo
from repro.core.types import UIntT
from repro.sim.cosim import CosimFabric, Cosimulator
from repro.sim.distrib import run_distributed
from repro.sim.pool import _collect_pool_results

PARAMS = VorbisParams(n_frames=3)

#: name -> (module-level builder, args) -- the picklable spec contract.
WORKLOADS = {
    "vorbis_B": (vp.build_partition, ("B", PARAMS)),
    "vorbis_G": (vp.build_multi_partition, ("G", PARAMS)),
    "vorbis_H": (vp.build_multi_partition, ("H", PARAMS)),
    "vorbis_mg_BC": (vp.build_group_partition, ("BC", PARAMS)),
    "vorbis_mg_BCF": (vp.build_group_partition, ("BCF", PARAMS)),
}

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="distributed workers need the fork start method"
)

_GROUPED_CACHE = {}


def grouped_reference(name, backend):
    """Serial ``scheduler="grouped"`` result for a catalog workload (cached)."""
    key = (name, backend)
    if key not in _GROUPED_CACHE:
        builder, args = WORKLOADS[name]
        workload = builder(*args)
        fabric = CosimFabric(workload.design, backend=backend)
        result = fabric.run(workload.cosim_done, max_cycles=500_000_000)
        _GROUPED_CACHE[key] = asdict(result)
    return _GROUPED_CACHE[key]


def distributed(name, **kwargs):
    builder, args = WORKLOADS[name]
    return run_distributed(builder, args, **kwargs)


# --------------------------------------------------------------------------
# differential matrix: distributed == grouped, bit for bit
# --------------------------------------------------------------------------


class TestDistributedDifferential:
    @pytest.mark.parametrize("carrier", ["shm", "socket"])
    @pytest.mark.parametrize("placement", ["group", "domain"])
    @pytest.mark.parametrize("backend", ["interp", "compiled", "source"])
    def test_vorbis_B_full_matrix(self, backend, placement, carrier):
        report = distributed(
            "vorbis_B", backend=backend, placement=placement, carrier=carrier
        )
        assert asdict(report.result) == grouped_reference("vorbis_B", backend)
        assert report.result.completed
        if HAVE_FORK:
            assert not report.fallback
            if placement == "domain":
                # The SW<->HW cut really crossed a process boundary.
                assert report.data_plane["records"] > 0
                assert report.data_plane["words"] > 0

    # Multi-group / multi-domain legs sampling every axis value at least
    # twice without running the full 40-cell product on every CI pass.
    LEGS = [
        ("vorbis_G", "compiled", "domain", "shm"),
        ("vorbis_G", "interp", "group", "shm"),
        ("vorbis_H", "compiled", "domain", "socket"),
        ("vorbis_H", "interp", "domain", "shm"),
        ("vorbis_mg_BC", "compiled", "domain", "shm"),
        ("vorbis_mg_BC", "source", "domain", "shm"),
        ("vorbis_mg_BC", "interp", "group", "socket"),
        ("vorbis_mg_BCF", "compiled", "group", "shm"),
        ("vorbis_mg_BCF", "compiled", "domain", "socket"),
    ]

    @pytest.mark.parametrize("name,backend,placement,carrier", LEGS)
    def test_multigroup_legs(self, name, backend, placement, carrier):
        report = distributed(
            name, backend=backend, placement=placement, carrier=carrier
        )
        assert asdict(report.result) == grouped_reference(name, backend)
        assert report.result.completed
        if HAVE_FORK and placement == "domain":
            assert report.data_plane["words"] > 0

    @needs_fork
    def test_outcomes_report_worker_processes(self):
        report = distributed("vorbis_mg_BC", placement="domain")
        # Domain placement: one worker per member, none of them the parent.
        assert report.processes == len(report.outcomes)
        assert all(o.pid != os.getpid() for o in report.outcomes)
        assert {o.mode for o in report.outcomes} == {"lockstep"}
        assert "wire words crossed process boundaries" in report.table()


# --------------------------------------------------------------------------
# scheduler dispatch
# --------------------------------------------------------------------------


class TestSchedulerDispatch:
    def test_missing_builder_spec_raises(self):
        workload = vp.build_partition("B", PARAMS)
        fabric = CosimFabric(workload.design, backend="interp")
        with pytest.raises(SimulationError, match="bind_builder"):
            fabric.run(workload.cosim_done, scheduler="distributed")

    def test_fabric_distributed_scheduler_matches_grouped(self):
        builder, args = WORKLOADS["vorbis_G"]
        workload = builder(*args)
        fabric = CosimFabric(workload.design, backend="compiled")
        fabric.bind_builder(builder, args)
        result = fabric.run(
            workload.cosim_done, max_cycles=500_000_000, scheduler="distributed"
        )
        assert asdict(result) == grouped_reference("vorbis_G", "compiled")
        assert fabric.now == result.fpga_cycles

    def test_cosimulator_distributed_scheduler(self):
        builder, args = WORKLOADS["vorbis_B"]
        ref_workload = builder(*args)
        ref = Cosimulator(ref_workload.design, backend="compiled").run(
            ref_workload.cosim_done, max_cycles=500_000_000
        )
        workload = builder(*args)
        cosim = Cosimulator(workload.design, backend="compiled")
        cosim.bind_builder(builder, args)
        result = cosim.run(
            workload.cosim_done,
            max_cycles=500_000_000,
            scheduler="distributed",
            placement="domain",
        )
        assert asdict(result) == asdict(ref)
        assert cosim.now == result.fpga_cycles


# --------------------------------------------------------------------------
# faults: worker death, carrier backpressure, undersized rings
# --------------------------------------------------------------------------

HW_CRASH = Domain("HW_CRASH")
HW_BURST = Domain("HW_BURST")


class _TestWorkload:
    """Minimal workload object satisfying the ``cosim_done`` contract."""

    def __init__(self, design, done):
        self.design = design
        self._done = done

    def cosim_done(self, cosim):
        return self._done(cosim)


def build_crash_pipeline(n_items=6, crash_at=3):
    """SW source -> HW stage whose kernel kills the process at ``crash_at``."""
    top = Module("top")
    src = top.add_submodule(Module("src", domain=SW))
    st = top.add_submodule(Module("st", domain=HW_CRASH))
    q = top.add_submodule(SyncFifo("q", UIntT(32), SW, HW_CRASH, depth=2))
    q_out = top.add_submodule(SyncFifo("q_out", UIntT(32), HW_CRASH, SW, depth=2))
    cnt = src.add_register("cnt", UIntT(32), 0)
    ndone = src.add_register("ndone", UIntT(32), 0)
    src.add_rule(
        "produce",
        par(
            q.call("enq", RegRead(cnt)),
            cnt.write(BinOp("+", RegRead(cnt), Const(1))),
        ).when(BinOp("<", RegRead(cnt), Const(n_items))),
    )

    def lethal(x):
        if x >= crash_at:
            os._exit(3)
        return x + 1

    step = KernelCall("lethal", lethal, [q.value("first")], sw_cycles=10, hw_cycles=2)
    st.add_rule("stage", par(q_out.call("enq", step), q.call("deq")))
    src.add_rule(
        "collect",
        par(q_out.call("deq"), ndone.write(BinOp("+", RegRead(ndone), Const(1)))),
    )
    design = Design(top, "crash_pipe")
    return _TestWorkload(design, lambda c: c.read(ndone) >= n_items)


def build_burst_pipeline(n_items=5, depth=3):
    """Two sync FIFOs on one HW->SW link: two records pumped per cycle.

    With a ring sized for a single framed record, the second route's record
    of each producing cycle must wait an iteration in the local pool --
    the backpressure path.  The channel's 50-cycle propagation latency
    dwarfs that deferral, so simulated timing is unaffected.
    """
    top = Module("top")
    src = top.add_submodule(Module("src", domain=HW_BURST))
    sink = top.add_submodule(Module("sink", domain=SW))
    q1 = top.add_submodule(SyncFifo("q1", UIntT(32), HW_BURST, SW, depth=depth))
    q2 = top.add_submodule(SyncFifo("q2", UIntT(32), HW_BURST, SW, depth=depth))
    cnt1 = src.add_register("cnt1", UIntT(32), 0)
    cnt2 = src.add_register("cnt2", UIntT(32), 0)
    acc1 = sink.add_register("acc1", UIntT(32), 0)
    acc2 = sink.add_register("acc2", UIntT(32), 0)
    ndone1 = sink.add_register("ndone1", UIntT(32), 0)
    ndone2 = sink.add_register("ndone2", UIntT(32), 0)
    src.add_rule(
        "produce1",
        par(
            q1.call("enq", RegRead(cnt1)),
            cnt1.write(BinOp("+", RegRead(cnt1), Const(1))),
        ).when(BinOp("<", RegRead(cnt1), Const(n_items))),
    )
    src.add_rule(
        "produce2",
        par(
            q2.call("enq", BinOp("*", RegRead(cnt2), Const(7))),
            cnt2.write(BinOp("+", RegRead(cnt2), Const(1))),
        ).when(BinOp("<", RegRead(cnt2), Const(n_items))),
    )
    sink.add_rule(
        "collect1",
        par(
            acc1.write(BinOp("+", RegRead(acc1), q1.value("first"))),
            q1.call("deq"),
            ndone1.write(BinOp("+", RegRead(ndone1), Const(1))),
        ),
    )
    sink.add_rule(
        "collect2",
        par(
            acc2.write(BinOp("+", RegRead(acc2), q2.value("first"))),
            q2.call("deq"),
            ndone2.write(BinOp("+", RegRead(ndone2), Const(1))),
        ),
    )
    design = Design(top, "burst_pipe")
    # min() reads both counters on every evaluation -- grouped/distributed
    # done predicates must not short-circuit across their register set.
    return _TestWorkload(
        design,
        lambda c: min(c.read(ndone1), c.read(ndone2)) >= n_items,
    )


@needs_fork
class TestFaults:
    def test_worker_crash_names_member(self):
        with pytest.raises(SimulationError, match="died with exit code 3"):
            run_distributed(build_crash_pipeline, backend="interp")

    def test_ring_backpressure_preserves_equality(self):
        workload = build_burst_pipeline()
        fabric = CosimFabric(workload.design, backend="interp")
        ref = fabric.run(workload.cosim_done, max_cycles=500_000_000)
        assert ref.completed

        # One UIntT(32) element frames to 2 words -> a 4-slot ring holds
        # exactly one record, but both routes pump each producing cycle.
        report = run_distributed(
            build_burst_pipeline,
            backend="interp",
            placement="domain",
            carrier="shm",
            ring_words=4,
        )
        assert asdict(report.result) == asdict(ref)
        assert report.data_plane["full_retries"] > 0
        # Credit conservation: every message the producers sent crossed the
        # wire and was delivered -- nothing lost to the full-ring deferrals.
        assert report.data_plane["records"] == ref.channel_messages

    def test_undersized_ring_rejected(self):
        with pytest.raises(ValueError, match="cannot hold one framed record"):
            distributed("vorbis_B", placement="domain", ring_words=4)


# --------------------------------------------------------------------------
# pool shutdown regression (satellite of the distributed work: the sweep
# pool shares the "dead workers vs. buffered results" edge with distrib)
# --------------------------------------------------------------------------


class _FakeWorker:
    def __init__(self, exitcode):
        self.exitcode = exitcode

    def is_alive(self):
        return False


class _FakeQueue:
    """Queue whose first ``empties`` gets raise Empty, then drains ``items``.

    Models a multiprocessing queue whose feeder thread is still flushing
    when every worker has already exited.
    """

    def __init__(self, items, empties=1):
        self._items = list(items)
        self._empties = empties

    def get(self, timeout=None):
        if self._empties > 0:
            self._empties -= 1
            raise queue.Empty
        if self._items:
            return self._items.pop(0)
        raise queue.Empty


class TestPoolShutdown:
    def test_clean_exit_with_buffered_results_is_not_a_dead_pool(self):
        workers = [_FakeWorker(0), _FakeWorker(0)]
        results = _FakeQueue([(0, True, "a"), (1, True, "b")], empties=1)
        received, failure = _collect_pool_results(results, workers, 2)
        assert failure is None
        assert received == {0: (True, "a"), 1: (True, "b")}

    def test_crashed_worker_reports_exit_codes(self):
        workers = [_FakeWorker(0), _FakeWorker(1)]
        results = _FakeQueue([(0, True, "a")], empties=1)
        received, failure = _collect_pool_results(results, workers, 2)
        assert received == {0: (True, "a")}
        assert isinstance(failure, SimulationError)
        assert "worker exit codes [1]" in str(failure)

    def test_clean_exit_with_lost_results_still_fails(self):
        workers = [_FakeWorker(0)]
        results = _FakeQueue([], empties=1)
        received, failure = _collect_pool_results(results, workers, 1)
        assert received == {}
        assert isinstance(failure, SimulationError)
        assert "results are missing" in str(failure)
