"""Differential and property tests for the compiled kernel dataplane.

The kernel compiler (:mod:`repro.core.kernelcompile`) gives every foreign
kernel up to three backends -- ``oracle`` (the original object-based code),
``python`` (batch loops over flat raw ints) and ``numpy`` (int64
vectorised) -- plus a memoised pure-kernel result cache.  The contract is
the same one the rule and transport dataplanes already carry: **backends
are bit-interchangeable**.  These tests enforce it at three levels:

* kernel level -- every vorbis kernel and every raw geometry kernel agrees
  with its oracle on random inputs (negatives included) across several
  fixed-point formats, including one wider than the NumPy backend's int64
  safety bound;
* cache level -- memoisation never changes a result, only whether it is
  recomputed;
* system level -- full co-simulations produce bitwise-identical
  ``CosimResult``s whichever kernel backend runs, under both rule-execution
  backends and both transports.
"""

import random
from dataclasses import asdict

import pytest

from repro.apps.raytracer import bvh, geometry
from repro.apps.vorbis import kernels
from repro.core import kernelcompile as kc
from repro.core.fixedpoint import FixComplex, FixedPoint

#: (int_bits, frac_bits) formats under test; (24, 40) is wider than
#: ``NUMPY_MAX_TOTAL_BITS`` and must silently take the python path.
FORMATS = [(8, 24), (16, 16), (4, 12), (24, 40)]

BACKENDS = ["oracle", "python"] + (["numpy"] if kc.HAVE_NUMPY else [])


def _rand_fix(rng, int_bits, frac_bits):
    total = int_bits + frac_bits
    return FixedPoint.from_raw(
        rng.randrange(-(1 << (total - 1)), 1 << (total - 1)), int_bits, frac_bits
    )


def _rand_frame(rng, n, int_bits, frac_bits):
    return tuple(_rand_fix(rng, int_bits, frac_bits) for _ in range(n))


def _rand_spectrum(rng, n, int_bits, frac_bits):
    return tuple(
        FixComplex(_rand_fix(rng, int_bits, frac_bits), _rand_fix(rng, int_bits, frac_bits))
        for _ in range(n)
    )


@pytest.fixture(autouse=True)
def _cold_cache():
    """Each test starts with a cold kernel cache and leaves none behind."""
    kc.clear_kernel_cache()
    yield
    kc.clear_kernel_cache()


# --------------------------------------------------------------------------
# vorbis kernels: backend matrix
# --------------------------------------------------------------------------


class TestVorbisBackendMatrix:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("n", [8, 64])
    def test_all_kernels_bit_identical(self, fmt, n):
        """Every vorbis kernel returns the oracle's exact values on every
        backend, across formats and frame sizes (random inputs, negatives
        included)."""
        ib, fb = fmt
        rng = random.Random(ib * 1000 + fb * 10 + n)
        frame = _rand_frame(rng, n, ib, fb)
        half = _rand_frame(rng, n // 2, ib, fb)
        spectrum = _rand_spectrum(rng, n, ib, fb)
        with kc.kernel_cache_override(False):
            expected = {}
            for backend in BACKENDS:
                with kc.kernel_backend_override(backend):
                    got = {
                        "gen_frame": kernels.gen_frame(3, n, 2012, ib, fb),
                        "backend_input": kernels.backend_input(frame, ib, fb),
                        "imdct_pre": kernels.imdct_pre(frame, ib, fb),
                        "rule_stage0": kernels.ifft_rule_stage(0, spectrum, 2, ib, fb),
                        "rule_stage1": kernels.ifft_rule_stage(1, spectrum, 2, ib, fb),
                        "ifft_full": kernels.ifft_full(spectrum, ib, fb),
                        "imdct_post": kernels.imdct_post(spectrum, ib, fb),
                        "window": kernels.window_overlap(half, frame, ib, fb),
                    }
                if backend == "oracle":
                    expected = got
                else:
                    for name, value in got.items():
                        assert value == expected[name], (backend, name, fmt, n)

    def test_wide_format_demotes_numpy_to_python(self):
        """Formats beyond the int64 safety bound never take the numpy path."""
        if not kc.HAVE_NUMPY:
            pytest.skip("NumPy not available")
        with kc.kernel_backend_override("numpy"):
            assert kc.effective_backend(32) == "numpy"
            assert kc.effective_backend(64) == "python"
        with kc.kernel_backend_override("python"):
            assert kc.effective_backend(64) == "python"
        with kc.kernel_backend_override("oracle"):
            assert kc.effective_backend(16) == "oracle"

    def test_window_overlap_length_error_identical_on_fast_path(self):
        """The fast path validates frame lengths before unboxing, raising the
        oracle's exact ValueError."""
        half = _rand_frame(random.Random(0), 4, 8, 24)
        bad = _rand_frame(random.Random(1), 5, 8, 24)
        messages = {}
        for backend in BACKENDS:
            with kc.kernel_backend_override(backend):
                with pytest.raises(ValueError) as exc:
                    kernels.window_overlap(half, bad, 8, 24)
                messages[backend] = str(exc.value)
        assert len(set(messages.values())) == 1, messages

    def test_backend_selection_api(self):
        previous = kc.kernel_backend()
        with pytest.raises(ValueError):
            kc.set_kernel_backend("fortran")
        assert kc.kernel_backend() == previous
        with kc.kernel_backend_override("auto") as resolved:
            assert resolved == ("numpy" if kc.HAVE_NUMPY else "python")
        assert kc.kernel_backend() == previous
        if not kc.HAVE_NUMPY:
            with pytest.raises(ValueError):
                kc.set_kernel_backend("numpy")


# --------------------------------------------------------------------------
# the memoised kernel result cache
# --------------------------------------------------------------------------


class TestKernelCache:
    def test_hit_returns_the_cached_object(self):
        frame = _rand_frame(random.Random(7), 16, 8, 24)
        with kc.kernel_backend_override("python"), kc.kernel_cache_override(True):
            first = kernels.imdct_pre(frame, 8, 24)
            before = kc.kernel_cache_info()["hits"]
            second = kernels.imdct_pre(frame, 8, 24)
            assert kc.kernel_cache_info()["hits"] == before + 1
        assert second is first

    def test_disabled_cache_recomputes_equal_values(self):
        frame = _rand_frame(random.Random(8), 16, 8, 24)
        with kc.kernel_backend_override("python"), kc.kernel_cache_override(False):
            first = kernels.imdct_pre(frame, 8, 24)
            second = kernels.imdct_pre(frame, 8, 24)
            assert kc.kernel_cache_info()["entries"] == 0
        assert second is not first
        assert second == first

    def test_cached_equals_uncached_across_kernels(self):
        rng = random.Random(9)
        frame = _rand_frame(rng, 32, 8, 24)
        half = _rand_frame(rng, 16, 8, 24)
        spectrum = _rand_spectrum(rng, 32, 8, 24)
        with kc.kernel_backend_override("python"):
            runs = {}
            for cached in (True, False):
                with kc.kernel_cache_override(cached):
                    runs[cached] = (
                        kernels.gen_frame(0, 32, 2012, 8, 24),
                        kernels.ifft_full(spectrum, 8, 24),
                        kernels.imdct_post(spectrum, 8, 24),
                        kernels.window_overlap(half, frame, 8, 24),
                    )
        assert runs[True] == runs[False]

    def test_cache_bound_is_enforced(self):
        with kc.kernel_backend_override("python"), kc.kernel_cache_override(True):
            limit = kc.kernel_cache_info()["limit"]
            for i in range(8):
                kernels.gen_frame(i, 8, 2012, 8, 24)
            assert 0 < kc.kernel_cache_info()["entries"] <= limit

    def test_disabling_clears(self):
        with kc.kernel_backend_override("python"), kc.kernel_cache_override(True):
            kernels.gen_frame(0, 8, 2012, 8, 24)
            assert kc.kernel_cache_info()["entries"] > 0
            with kc.kernel_cache_override(False):
                assert kc.kernel_cache_info()["entries"] == 0


# --------------------------------------------------------------------------
# raytracer raw kernels: property tests against the object oracles
# --------------------------------------------------------------------------


class TestGeometryRawKernels:
    @pytest.mark.parametrize("fmt", [(16, 16), (8, 24)])
    def test_triangle_and_box_and_shade_match_oracle(self, fmt):
        ib, fb = fmt
        rng = random.Random(ib * 100 + fb)
        light = geometry.light_direction(ib, fb)
        light_raws = geometry.vec_raws(light)

        def rand_vec(lo=-4.0, hi=4.0):
            return geometry.vec(
                rng.uniform(lo, hi), rng.uniform(lo, hi), rng.uniform(lo, hi), ib, fb
            )

        for _ in range(400):
            origin = rand_vec()
            direction = rand_vec(-1.0, 1.0)
            if rng.random() < 0.2:
                # Degenerate direction components exercise the epsilon branch.
                axis = rng.choice(("x", "y", "z"))
                direction = dict(direction)
                direction[axis] = FixedPoint.zero(ib, fb)
            ray = {"origin": origin, "dir": direction, "pixel": 0}
            o_raws = geometry.vec_raws(origin)
            d_raws = geometry.vec_raws(direction)

            v0, v1, v2 = rand_vec(), rand_vec(), rand_vec()
            tri = {"v0": v0, "v1": v1, "v2": v2}
            t_oracle = geometry.intersect_triangle(ray, tri)
            t_raw = geometry.intersect_triangle_raw(
                o_raws,
                d_raws,
                geometry.vec_raws(v0),
                geometry.vec_raws(v1),
                geometry.vec_raws(v2),
                fb,
                ib + fb,
            )
            if t_oracle is None:
                assert t_raw is None
            else:
                assert t_raw == t_oracle.raw

            lo = geometry.v_min(geometry.v_min(v0, v1), v2)
            hi = geometry.v_max(geometry.v_max(v0, v1), v2)
            assert geometry.intersect_box_raw(
                o_raws, d_raws, geometry.vec_raws(lo), geometry.vec_raws(hi), fb, ib + fb
            ) == geometry.intersect_box(ray, lo, hi)

            shade_oracle = geometry.lambert_shade(tri, light, ib, fb)
            shade_raw = geometry.lambert_shade_raw(
                geometry.vec_raws(v0),
                geometry.vec_raws(v1),
                geometry.vec_raws(v2),
                light_raws,
                ib,
                fb,
            )
            assert shade_raw == shade_oracle.raw

    def test_degenerate_triangle_never_hit_on_fast_path(self):
        tri = geometry.degenerate_triangle()
        ray = geometry.camera_ray(0, 4, 4)
        assert (
            geometry.intersect_triangle_raw(
                geometry.vec_raws(ray["origin"]),
                geometry.vec_raws(ray["dir"]),
                geometry.vec_raws(tri["v0"]),
                geometry.vec_raws(tri["v1"]),
                geometry.vec_raws(tri["v2"]),
                16,
                32,
            )
            is None
        )

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "oracle"])
    def test_traverse_matches_oracle_on_camera_rays(self, backend):
        triangles = geometry.generate_scene(48, seed=5)
        tree = bvh.build_bvh(triangles)
        for pixel in range(36):
            ray = geometry.camera_ray(pixel, 6, 6)
            with kc.kernel_backend_override("oracle"):
                want = bvh.traverse(tree, ray)
            with kc.kernel_backend_override(backend):
                got = bvh.traverse(tree, ray)
            assert got == want


# --------------------------------------------------------------------------
# system level: CosimResults are backend-independent
# --------------------------------------------------------------------------


def _vorbis_snapshot(letter, kernel_backend, rule_backend, transport, cache=True):
    from repro.apps.vorbis import partitions as vp
    from repro.apps.vorbis.params import VorbisParams
    from repro.sim.cosim import Cosimulator

    with kc.kernel_backend_override(kernel_backend), kc.kernel_cache_override(cache):
        workload = vp.build_partition(letter, VorbisParams(n_frames=2))
        cosim = Cosimulator(workload.design, backend=rule_backend, transport=transport)
        result = cosim.run(workload.cosim_done, max_cycles=500_000_000)
        return asdict(result), cosim.read_sw(workload.checksum)


def _raytracer_snapshot(letter, kernel_backend, rule_backend, transport):
    from repro.apps.raytracer import partitions as rp
    from repro.apps.raytracer.params import RayTracerParams
    from repro.sim.cosim import Cosimulator

    with kc.kernel_backend_override(kernel_backend):
        workload = rp.build_partition(
            letter, RayTracerParams(n_triangles=24, image_width=3, image_height=3)
        )
        cosim = Cosimulator(workload.design, backend=rule_backend, transport=transport)
        result = cosim.run(workload.cosim_done, max_cycles=500_000_000)
        return asdict(result), cosim.read_sw(workload.checksum)


class TestCosimBackendIndependence:
    @pytest.mark.parametrize("rule_backend,transport", [("interp", "interp"), ("compiled", "compiled")])
    @pytest.mark.parametrize("letter", ["B", "F"])
    def test_vorbis_results_identical_across_kernel_backends(
        self, letter, rule_backend, transport
    ):
        """Partition B crosses the HW/SW cut mid-pipeline; F runs every
        kernel in software.  Either way the CosimResult may not depend on
        the kernel backend."""
        want = _vorbis_snapshot(letter, "oracle", rule_backend, transport)
        for backend in BACKENDS[1:]:
            assert _vorbis_snapshot(letter, backend, rule_backend, transport) == want

    @pytest.mark.parametrize("rule_backend,transport", [("interp", "interp"), ("compiled", "compiled")])
    @pytest.mark.parametrize("letter", ["A", "C"])
    def test_raytracer_results_identical_across_kernel_backends(
        self, letter, rule_backend, transport
    ):
        """Partition A traces entirely in software, C entirely in hardware."""
        want = _raytracer_snapshot(letter, "oracle", rule_backend, transport)
        for backend in BACKENDS[1:]:
            assert _raytracer_snapshot(letter, backend, rule_backend, transport) == want

    def test_vorbis_results_identical_with_and_without_cache(self):
        """Memoisation is invisible in the CosimResult, not just the audio."""
        with_cache = _vorbis_snapshot("F", "python", "compiled", "compiled", cache=True)
        without = _vorbis_snapshot("F", "python", "compiled", "compiled", cache=False)
        assert with_cache == without
