"""Tests for the static design verifier (``repro.analysis``).

Three layers: the positive control (every shipped workload lints clean --
the CI ``lint-designs`` gate in test form), the negative controls (each
diagnostic code fires on exactly its seeded-defect fixture from
``tests/analysis_fixtures.py``), and the plumbing (determinism,
suppression, strict ``verify=True`` mode, the CLI entry point).
"""

import pytest

from analysis_fixtures import (
    DESIGN_FIXTURES,
    build_credit_cycle,
    build_snapshot_arity_drift_fabric,
    build_snapshot_gap_fabric,
)
from repro.analysis import (
    CODES,
    Diagnostic,
    VerificationError,
    audit_fabric,
    filter_suppressed,
    require_clean,
    shipped_workloads,
    verify_design,
    verify_partitioning,
    workload_by_name,
)
from repro.analysis.__main__ import main as lint_main
from repro.codegen.interface import build_interface_spec
from repro.core.partition import partition_design
from repro.sim.cosim import CosimFabric

WORKLOAD_NAMES = [spec.name for spec in shipped_workloads()]


class TestCleanPass:
    """The shipped workloads are the verifier's zero-false-positive bar."""

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_shipped_workload_lints_clean(self, name):
        workload = workload_by_name(name).build()
        assert verify_design(workload.design) == []

    @pytest.mark.parametrize("name", ["vorbis_B", "vorbis_G", "raytracer_C"])
    def test_shipped_fabric_audits_clean(self, name):
        workload = workload_by_name(name).build()
        fabric = CosimFabric(workload.design, backend="compiled")
        assert audit_fabric(fabric) == []

    def test_summary_reports_totals(self):
        workload = workload_by_name("vorbis_G").build()
        text = partition_design(workload.design).summary()
        assert "[totals]" in text
        assert "credit window" in text


class TestSeededDefects:
    """Each code must fire on its fixture -- and fire alone."""

    @pytest.mark.parametrize("code", sorted(DESIGN_FIXTURES))
    def test_fixture_fires_exactly_its_code(self, code):
        diags = verify_design(DESIGN_FIXTURES[code]())
        assert {d.code for d in diags} == {code}

    def test_snapshot_gap_detected(self):
        diags = audit_fabric(build_snapshot_gap_fabric())
        assert {d.code for d in diags} == {"REPRO-E008"}
        assert any("_forgotten_counter" in d.location for d in diags)

    def test_snapshot_arity_drift_detected(self):
        diags = audit_fabric(build_snapshot_arity_drift_fabric())
        assert "REPRO-E009" in {d.code for d in diags}

    def test_diagnostics_are_deterministic(self):
        for code, builder in sorted(DESIGN_FIXTURES.items()):
            first = verify_design(builder())
            second = verify_design(builder())
            assert first == second
            assert [d.render() for d in first] == [d.render() for d in second]


class TestPlumbing:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="REPRO-X999", location="nowhere", message="bogus")

    def test_severity_derived_from_code(self):
        assert all(code[6] in ("E", "W") for code in CODES)
        diags = verify_design(DESIGN_FIXTURES["REPRO-W004"]())
        assert all(d.severity == "warning" for d in diags)
        diags = verify_design(DESIGN_FIXTURES["REPRO-E002"]())
        assert all(d.severity == "error" for d in diags)

    def test_suppression_by_code_and_check(self):
        diags = verify_design(DESIGN_FIXTURES["REPRO-W005"]())
        assert diags
        assert filter_suppressed(diags, ["REPRO-W005"]) == []
        assert filter_suppressed(diags, [diags[0].check]) == []

    def test_require_clean_errors_only(self):
        warnings = verify_design(DESIGN_FIXTURES["REPRO-W004"]())
        require_clean(warnings)  # warnings pass strict mode
        errors = verify_design(DESIGN_FIXTURES["REPRO-E003"]())
        with pytest.raises(VerificationError) as err:
            require_clean(errors, context="strictness")
        assert "REPRO-E003" in str(err.value)
        assert err.value.diagnostics == errors


class TestStrictMode:
    def test_fabric_verify_rejects_credit_cycle(self):
        design = build_credit_cycle()
        CosimFabric(design)  # permissive default still elaborates
        with pytest.raises(VerificationError):
            CosimFabric(design, verify=True)

    def test_interface_spec_verify_rejects_credit_cycle(self):
        partitioning = partition_design(build_credit_cycle())
        build_interface_spec(partitioning)  # permissive default still builds
        with pytest.raises(VerificationError):
            build_interface_spec(partitioning, verify=True)

    def test_fabric_verify_accepts_clean_design(self):
        workload = workload_by_name("vorbis_B").build()
        fabric = CosimFabric(workload.design, backend="compiled", verify=True)
        assert fabric.partitioning.cut


class TestCli:
    def test_list(self, capsys):
        assert lint_main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == WORKLOAD_NAMES

    def test_clean_workload_exits_zero(self, capsys):
        assert lint_main(["vorbis_A", "-q"]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            lint_main(["no_such_workload"])
