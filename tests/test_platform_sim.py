"""Tests for the platform substrate (channel, LIBDN) and the co-simulation engines."""

import pytest

from repro.core.action import par
from repro.core.domains import HW, SW
from repro.core.expr import BinOp, Const, KernelCall, RegRead
from repro.core.module import Design, Module
from repro.core.optimize import OptimizationConfig
from repro.core.synchronizers import SyncFifo
from repro.core.types import UIntT, VectorT
from repro.platform.channel import ChannelParams, DuplexChannel
from repro.platform.libdn import VirtualChannelTable
from repro.platform.platform import Platform
from repro.sim.cosim import Cosimulator


def build_offload_design(n_items=6, hw_kernel_cycles=10):
    """SW produces, HW computes a kernel, SW accumulates (the minimal codesign)."""
    top = Module("top")
    swm = top.add_submodule(Module("swside", domain=SW))
    hwm = top.add_submodule(Module("hwside", domain=HW))
    to_hw = top.add_submodule(SyncFifo("to_hw", UIntT(32), SW, HW, depth=2))
    to_sw = top.add_submodule(SyncFifo("to_sw", UIntT(32), HW, SW, depth=2))
    cnt = swm.add_register("cnt", UIntT(32), 0)
    acc = swm.add_register("acc", UIntT(32), 0)
    ndone = swm.add_register("ndone", UIntT(32), 0)
    swm.add_rule(
        "produce",
        par(to_hw.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
        .when(BinOp("<", RegRead(cnt), Const(n_items))),
    )
    square = KernelCall(
        "square", lambda x: x * x, [to_hw.value("first")], sw_cycles=40, hw_cycles=hw_kernel_cycles
    )
    hwm.add_rule("compute", par(to_sw.call("enq", square), to_hw.call("deq")))
    swm.add_rule(
        "collect",
        par(
            acc.write(BinOp("+", RegRead(acc), to_sw.value("first"))),
            to_sw.call("deq"),
            ndone.write(BinOp("+", RegRead(ndone), Const(1))),
        ),
    )
    return Design(top, "offload"), acc, ndone, n_items


class TestChannelModel:
    def test_burst_amortises_overhead(self):
        params = ChannelParams()
        assert params.occupancy_cycles(128, burst=True) < params.occupancy_cycles(128, burst=False)

    def test_occupancy_scales_with_words(self):
        params = ChannelParams()
        assert params.occupancy_cycles(200) > params.occupancy_cycles(100)

    def test_round_trip_close_to_paper(self):
        params = Platform.ml507().channel
        assert 80 <= params.round_trip_latency_cycles <= 160

    def test_messages_serialise_on_one_direction(self):
        channel = DuplexChannel(ChannelParams())
        m1 = channel.to_hw.send(0, [0] * 100, now=0.0)
        m2 = channel.to_hw.send(1, [1] * 100, now=0.0)
        assert m2.delivered_at >= m1.delivered_at + channel.params.occupancy_cycles(100)
        assert channel.to_hw.busy_until == 2 * channel.params.occupancy_cycles(100)

    def test_directions_are_independent(self):
        channel = DuplexChannel(ChannelParams())
        m1 = channel.to_hw.send(0, [0] * 100, now=0.0)
        m2 = channel.to_sw.send(1, [1] * 100, now=0.0)
        assert m1.delivered_at == m2.delivered_at

    def test_deliveries_due(self):
        channel = DuplexChannel(ChannelParams())
        message = channel.to_hw.send(0, list(range(10)), now=0.0)
        assert channel.to_hw.deliveries_due(message.delivered_at - 1) == []
        assert channel.to_hw.deliveries_due(message.delivered_at) == [message]
        assert channel.to_hw.pending == 0

    def test_messages_carry_their_wire_words(self):
        """What crosses a link is the packed word array, header first."""
        channel = DuplexChannel(ChannelParams())
        words = [0x0002000A] + list(range(10))
        message = channel.to_hw.send(2, words, now=0.0)
        assert message.words == tuple(words)
        (delivered,) = channel.to_hw.deliveries_due(message.delivered_at)
        assert delivered.words == tuple(words)

    def test_stats_accumulate(self):
        channel = DuplexChannel(ChannelParams())
        channel.to_hw.send(0, [0] * 10, now=0.0)
        channel.to_hw.send(0, [1] * 10, now=0.0)
        assert channel.total_messages == 2
        assert channel.total_words == 20

    def test_pool_compacts_when_drained(self):
        direction = DuplexChannel(ChannelParams()).to_hw
        for i in range(8):
            direction.send(0, [i, i], now=0.0)
        assert direction.pool.pending == 8
        direction.deliveries_due(1e9)
        assert direction.pool.pending == 0
        direction.send(0, [9, 9], now=0.0)  # push compacts the drained rings
        assert direction.pool.head == 0 and direction.pool.word_head == 0
        assert direction.pool.words == [9, 9]


class TestVirtualChannels:
    def test_table_assigns_unique_ids(self):
        syncs = [SyncFifo(f"s{i}", UIntT(32), SW, HW) for i in range(3)]
        table = VirtualChannelTable(syncs)
        ids = [table.channel_for(s).vc_id for s in syncs]
        assert sorted(ids) == [0, 1, 2]
        assert table.by_id(1).sync is syncs[1]

    def test_words_per_element_includes_header(self):
        sync = SyncFifo("s", VectorT(4, UIntT(32)), SW, HW)
        table = VirtualChannelTable([sync])
        assert table.channel_for(sync).words_per_element == 5

    def test_credit_accounting(self):
        sync = SyncFifo("s", UIntT(32), SW, HW, depth=2)
        table = VirtualChannelTable([sync])
        vc = table.channel_for(sync)
        assert vc.can_send()
        vc.on_send()
        vc.on_send()
        assert not vc.can_send()
        vc.on_deliver()
        vc.on_credit_return()
        assert vc.can_send()

    def test_channel_carries_one_layout(self):
        """One MessageLayout per channel: encode/decode come from it."""
        from repro.platform.marshal import layout_for

        sync = SyncFifo("s", VectorT(4, UIntT(32)), SW, HW)
        vc = VirtualChannelTable([sync]).channel_for(sync)
        assert vc.layout is layout_for(sync.ty, 32)
        value = (1, 2, 3, 4)
        assert vc.decode(vc.encode(value), 1) == value

    def test_narrow_word_width_is_a_build_time_error(self):
        """A link too narrow for the header fails when the table is built,
        not by corrupting headers mid-simulation (typed WireFormatError)."""
        from repro.core.errors import WireFormatError

        sync = SyncFifo("s", UIntT(32), SW, HW)
        with pytest.raises(WireFormatError):
            VirtualChannelTable([sync], word_bits=16)
        with pytest.raises(WireFormatError):
            VirtualChannelTable([sync], word_bits_by_sync={sync: 16})

    def test_vc_id_space_overflow_is_a_build_time_error(self):
        from repro.core.errors import WireFormatError
        from repro.platform.marshal import VC_ID_BITS

        syncs = [SyncFifo(f"s{i}", UIntT(8), SW, HW) for i in range((1 << VC_ID_BITS) + 1)]
        with pytest.raises(WireFormatError):
            VirtualChannelTable(syncs)


class TestCosimulator:
    def test_offload_produces_correct_result(self):
        design, acc, ndone, n = build_offload_design()
        cosim = Cosimulator(design)
        result = cosim.run(lambda c: c.read_sw(ndone) >= n)
        assert result.completed
        assert cosim.read_sw(acc) == sum(i * i for i in range(n))

    def test_channel_carries_one_message_per_item_each_way(self):
        design, acc, ndone, n = build_offload_design()
        cosim = Cosimulator(design)
        result = cosim.run(lambda c: c.read_sw(ndone) >= n)
        assert result.channel_messages == 2 * n

    def test_every_rule_fires_once_per_item(self):
        design, acc, ndone, n = build_offload_design()
        cosim = Cosimulator(design)
        result = cosim.run(lambda c: c.read_sw(ndone) >= n)
        assert all(count == n for count in result.fire_counts.values())

    def test_latency_shows_up_in_total_cycles(self):
        """Higher channel latency must not change results, only timing."""
        design1, acc1, ndone1, n = build_offload_design()
        fast = Cosimulator(design1, platform=Platform.ml507())
        r_fast = fast.run(lambda c: c.read_sw(ndone1) >= n)
        design2, acc2, ndone2, _ = build_offload_design()
        slow_platform = Platform.ml507().with_channel(one_way_latency_cycles=500)
        slow = Cosimulator(design2, platform=slow_platform)
        r_slow = slow.run(lambda c: c.read_sw(ndone2) >= n)
        assert fast.read_sw(acc1) == slow.read_sw(acc2)
        assert r_slow.fpga_cycles > r_fast.fpga_cycles

    def test_multicycle_hw_rules_serialise(self):
        """A longer hardware kernel latency lengthens the run."""
        design1, _, ndone1, n = build_offload_design(hw_kernel_cycles=1)
        design2, _, ndone2, _ = build_offload_design(hw_kernel_cycles=200)
        r1 = Cosimulator(design1).run(lambda c: c.read_sw(ndone1) >= n)
        r2 = Cosimulator(design2).run(lambda c: c.read_sw(ndone2) >= n)
        assert r2.fpga_cycles > r1.fpga_cycles

    def test_sw_only_design_uses_no_channel(self):
        top = Module("top", domain=SW)
        cnt = top.add_register("cnt", UIntT(32), 0)
        top.add_rule(
            "tick",
            cnt.write(BinOp("+", RegRead(cnt), Const(1))).when(BinOp("<", RegRead(cnt), Const(5))),
        )
        cosim = Cosimulator(Design(top, "sw_only"))
        result = cosim.run(lambda c: c.read_sw(cnt) >= 5)
        assert result.completed
        assert result.channel_messages == 0
        assert result.hw_firings == 0

    def test_incomplete_run_reported(self):
        """A design that deadlocks before the predicate holds is reported as incomplete."""
        design, acc, ndone, n = build_offload_design()
        cosim = Cosimulator(design)
        result = cosim.run(lambda c: c.read_sw(ndone) >= n + 100)
        assert not result.completed

    def test_unoptimised_software_is_slower(self):
        design1, _, ndone1, n = build_offload_design()
        design2, _, ndone2, _ = build_offload_design()
        optimised = Cosimulator(design1, config=OptimizationConfig.all()).run(
            lambda c: c.read_sw(ndone1) >= n
        )
        naive = Cosimulator(design2, config=OptimizationConfig.none()).run(
            lambda c: c.read_sw(ndone2) >= n
        )
        assert naive.sw_cpu_cycles > optimised.sw_cpu_cycles

    def test_driver_cost_charged_for_sw_messages(self):
        design, acc, ndone, n = build_offload_design()
        cosim = Cosimulator(design)
        result = cosim.run(lambda c: c.read_sw(ndone) >= n)
        assert result.sw_cpu_cycles_driver > 0
