"""Differential tests: the fast rule backends against the tree walker.

The tree-walking :class:`~repro.core.semantics.Evaluator` is the semantic
reference oracle; the closure-compiled backend (:mod:`repro.core.compile`)
and the source-lowered backend (:mod:`repro.core.pycodegen`), each paired
with dirty-set scheduling (:class:`~repro.core.scheduler.RuleWakeup`), must
be *observationally equivalent*: identical final stores, identical fire
counts, identical guard-failure counts and identical cost statistics -- on
the reference simulator under every scheduling policy, and on the full
HW/SW co-simulation of both applications.
"""

from dataclasses import asdict

import pytest

from repro.core.action import IfA, LetA, LocalGuard, Loop, Par, RegWrite, Seq, WhenA, par, seq
from repro.core.expr import (
    BinOp,
    Const,
    FieldSelect,
    KernelCall,
    LetE,
    Mux,
    RegRead,
    UnOp,
    Var,
    WhenE,
)
from repro.core.interpreter import Simulator
from repro.core.module import Design, Module
from repro.core.optimize import OptimizationConfig
from repro.core.primitives import Fifo, RegFile
from repro.core.types import BoolT, UIntT
from repro.platform.platform import Platform
from repro.sim.cosim import Cosimulator
from repro.sim.costmodel import SwCostAccumulator


# --------------------------------------------------------------------------
# design corpus
# --------------------------------------------------------------------------


def build_fifo_pipeline():
    """Producer/consumer over a FIFO: guards, primitive methods, Par."""
    top = Module("top")
    fifo = top.add_submodule(Fifo("q", UIntT(32), depth=2))
    cnt = top.add_register("cnt", UIntT(32), 0)
    total = top.add_register("total", UIntT(32), 0)
    top.add_rule(
        "produce",
        par(fifo.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1))))
        .when(BinOp("<", RegRead(cnt), Const(17))),
    )
    top.add_rule(
        "consume",
        par(total.write(BinOp("+", RegRead(total), fifo.value("first"))), fifo.call("deq")),
    )
    return Design(top, name="fifo_pipeline")


def build_kitchen_sink():
    """One design touching every kernel-grammar construct.

    Loops, sequential composition, localGuard, non-strict lets, muxes,
    guarded expressions, field selects, kernel calls (constant and dynamic
    cost), a RegFile, and a user-module method with a guard.
    """
    top = Module("top")
    mem = top.add_submodule(RegFile("mem", UIntT(32), size=8, init=list(range(8))))
    helper = top.add_submodule(Module("helper"))
    hval = helper.add_register("hval", UIntT(32), 3)
    helper.add_method(
        "bump",
        "action",
        params=["x"],
        body=hval.write(BinOp("+", RegRead(hval), Var("x"))),
        guard=BinOp("<", RegRead(hval), Const(60)),
    )
    helper.add_method(
        "doubled",
        "value",
        params=[],
        body=BinOp("*", RegRead(hval), Const(2)),
        guard=Const(True),
    )

    i = top.add_register("i", UIntT(32), 0)
    acc = top.add_register("acc", UIntT(32), 0)
    flag = top.add_register("flag", BoolT(), False)
    scratch = top.add_register("scratch", UIntT(32), 0)

    kernel = KernelCall(
        "mix",
        lambda a, b: (a * 7 + b) & 0xFFFF,
        [RegRead(acc), RegRead(i)],
        sw_cycles=lambda a, b: 5 + (a & 3),
        hw_cycles=2,
    )
    top.add_rule(
        "step",
        seq(
            acc.write(kernel),
            scratch.write(
                LetE(
                    "t",
                    BinOp("+", RegRead(acc), Const(1)),
                    Mux(RegRead(flag), Var("t"), BinOp("*", Var("t"), Const(3))),
                )
            ),
            i.write(BinOp("+", RegRead(i), Const(1))),
        ).when(BinOp("<", RegRead(i), Const(9))),
    )
    top.add_rule(
        "toggle",
        par(
            flag.write(UnOp("!", RegRead(flag))),
            LocalGuard(WhenA(scratch.write(Const(0)), RegRead(flag))),
        ).when(BinOp("==", BinOp("%", RegRead(i), Const(3)), Const(1))),
        urgency=1,
    )
    top.add_rule(
        "memwork",
        Loop(
            BinOp("<", RegRead(scratch), Const(4)),
            seq(
                mem.call(
                    "upd",
                    RegRead(scratch),
                    BinOp("+", mem.value("sub", RegRead(scratch)), RegRead(i)),
                ),
                scratch.write(BinOp("+", RegRead(scratch), Const(1))),
            ),
            max_iterations=64,
        ).when(BinOp("==", RegRead(i), Const(5))),
    )
    top.add_rule(
        "call_helper",
        helper.call("bump", FieldSelect(KernelCall(
            "pair", lambda a: {"lo": a & 0xF, "hi": a >> 4}, [RegRead(acc)], 2, 1
        ), "lo")).when(BinOp(">", RegRead(i), Const(2))),
    )
    top.add_rule(
        "use_value_method",
        acc.write(WhenE(helper.value("doubled"), RegRead(flag)))
        .when(BinOp("==", RegRead(i), Const(7))),
    )
    return Design(top, name="kitchen_sink")


CORPUS = [build_fifo_pipeline, build_kitchen_sink]

#: The full rule-execution backend matrix; ``interp`` is the oracle.
BACKENDS = ("interp", "compiled", "source")
FAST_BACKENDS = ("compiled", "source")


def final_state(sim: Simulator):
    stores = {reg.full_name: sim.store[reg] for reg in sim.design.all_registers()}
    return stores, dict(sim.fire_counts), sim.firings, sim.guard_failures


# --------------------------------------------------------------------------
# reference simulator equivalence
# --------------------------------------------------------------------------


class TestSimulatorEquivalence:
    @pytest.mark.parametrize("policy", ["round-robin", "priority", "random"])
    @pytest.mark.parametrize("builder", CORPUS, ids=lambda b: b.__name__)
    def test_backends_agree_under_every_policy(self, builder, policy):
        sims = {}
        for backend in BACKENDS:
            sim = Simulator(builder(), policy=policy, seed=1234, backend=backend)
            sim.run(500)
            sims[backend] = final_state(sim)
        for backend in FAST_BACKENDS:
            assert sims[backend] == sims["interp"], backend

    @pytest.mark.parametrize("seed", [0, 7, 99, 1234])
    def test_randomized_schedules_agree(self, seed):
        """The random policy consumes its RNG identically in both backends."""
        results = {}
        for backend in BACKENDS:
            sim = Simulator(build_kitchen_sink(), policy="random", seed=seed, backend=backend)
            sim.run(500)
            results[backend] = final_state(sim)
        for backend in FAST_BACKENDS:
            assert results[backend] == results["interp"], backend

    def test_quiescence_and_wakeup(self):
        """Dirty-set sleeping must not miss a test-bench poke."""
        for backend in BACKENDS:
            top = Module("top")
            go = top.add_register("go", BoolT(), False)
            n = top.add_register("n", UIntT(32), 0)
            top.add_rule(
                "tick",
                par(n.write(BinOp("+", RegRead(n), Const(1))), go.write(Const(False)))
                .when(RegRead(go)),
            )
            sim = Simulator(Design(top), backend=backend)
            assert sim.run(10) == 0  # quiescent
            sim.write(go, True)  # external write must wake the rule
            assert sim.run(10) == 1
            assert sim.read(n) == 1

    def test_cost_hooks_identical_cpu_cycles(self):
        """Simulator-with-hooks: compiled hooks charge the same cycles."""
        params = Platform.ml507().sw_costs
        totals = {}
        for backend in BACKENDS:
            acc = SwCostAccumulator(params)
            sim = Simulator(build_kitchen_sink(), hooks=acc, backend=backend)
            sim.run(200)
            totals[backend] = (acc.cpu_cycles, acc.kernel_cycles, sim.firings)
        for backend in FAST_BACKENDS:
            assert totals[backend] == totals["interp"], backend


# --------------------------------------------------------------------------
# full co-simulation equivalence (both applications)
# --------------------------------------------------------------------------


def _cosim_result(workload, backend, config=None):
    cosim = Cosimulator(
        workload.design, config=config or OptimizationConfig.all(), backend=backend
    )
    return cosim.run(workload.cosim_done, max_cycles=500_000_000)


class TestCosimEquivalence:
    @pytest.mark.parametrize("letter", ["B", "E", "F"])
    def test_vorbis_partitions_bitwise_identical(self, letter):
        from repro.apps.vorbis import partitions as vp
        from repro.apps.vorbis.params import VorbisParams

        workload = vp.build_partition(letter, VorbisParams(n_frames=4))
        results = {b: _cosim_result(workload, b) for b in BACKENDS}
        for backend in FAST_BACKENDS:
            assert asdict(results[backend]) == asdict(results["interp"]), backend

    @pytest.mark.parametrize("letter", ["B", "D"])
    def test_raytracer_partitions_bitwise_identical(self, letter):
        from repro.apps.raytracer import partitions as rp
        from repro.apps.raytracer.params import RayTracerParams

        workload = rp.build_partition(
            letter, RayTracerParams(n_triangles=24, image_width=3, image_height=3)
        )
        results = {b: _cosim_result(workload, b) for b in BACKENDS}
        for backend in FAST_BACKENDS:
            assert asdict(results[backend]) == asdict(results["interp"]), backend

    @pytest.mark.parametrize(
        "config",
        [OptimizationConfig.none(), OptimizationConfig(True, False, True, True)],
        ids=["opt_none", "no_inlining"],
    )
    def test_unoptimised_rules_bitwise_identical(self, config):
        """The ablation configs exercise the try/catch + shadow cost paths."""
        from repro.apps.vorbis import partitions as vp
        from repro.apps.vorbis.params import VorbisParams

        workload = vp.build_partition("F", VorbisParams(n_frames=3))
        results = {b: _cosim_result(workload, b, config) for b in BACKENDS}
        for backend in FAST_BACKENDS:
            assert asdict(results[backend]) == asdict(results["interp"]), backend

    def test_final_stores_identical(self):
        """Beyond statistics: the committed architectural state must match."""
        from repro.apps.vorbis import partitions as vp
        from repro.apps.vorbis.params import VorbisParams

        workload = vp.build_partition("E", VorbisParams(n_frames=3))
        stores = {}
        for backend in BACKENDS:
            cosim = Cosimulator(workload.design, backend=backend)
            cosim.run(workload.cosim_done, max_cycles=500_000_000)
            stores[backend] = {
                reg.full_name: cosim.read(reg) for reg in workload.design.all_registers()
            }
        for backend in FAST_BACKENDS:
            assert stores[backend] == stores["interp"], backend
