"""Figure 13 (left): execution times of the Ogg Vorbis partitions.

Regenerates the paper's bar chart as a table of FPGA cycles per partition
(A--F plus the two baselines F1 = SystemC and F2 = hand-written C++) and
asserts every qualitative claim the paper makes about it:

* the full-software partition F is *not* the slowest configuration;
* partitions A and C are slightly slower than F (communication outweighs the
  accelerated computation);
* moving only the IFFT to hardware (A) has a marginal effect;
* the full-hardware back-end E is the fastest configuration;
* the SystemC model is roughly 3x slower than the generated software;
* the hand-coded C++ is slightly faster than the generated software.
"""

from __future__ import annotations

import pytest

from conftest import VORBIS_PARAMS, print_table
from repro.apps.vorbis.partitions import PARTITION_ORDER, hw_stage_names
from repro.baselines.handcoded import run_handcoded_vorbis, run_systemc_vorbis


@pytest.fixture(scope="module")
def figure13(vorbis_results):
    """Per-partition execution time in FPGA cycles, plus the two baselines."""
    cycles = {letter: vorbis_results[letter].fpga_cycles for letter in PARTITION_ORDER}
    cycles["F1 (SystemC)"] = run_systemc_vorbis(VORBIS_PARAMS).fpga_cycles()
    cycles["F2 (hand C++)"] = run_handcoded_vorbis(VORBIS_PARAMS).fpga_cycles()
    return cycles


def test_fig13_vorbis_table(figure13, benchmark):
    """Print the Figure 13 (left) series and sanity-check completion."""
    rows = {
        f"{letter} [HW: {', '.join(hw_stage_names(letter)) or 'none'}]"
        if letter in PARTITION_ORDER
        else letter: cycles / VORBIS_PARAMS.n_frames
        for letter, cycles in figure13.items()
    }
    print_table("Figure 13 (left): Ogg Vorbis execution time", rows, "FPGA cycles / frame")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(value > 0 for value in figure13.values())


def test_full_sw_is_not_slowest(figure13):
    """"The slowest partition is not the one which computes everything in SW (F)."""
    slowest = max(PARTITION_ORDER, key=lambda letter: figure13[letter])
    assert slowest != "F"


def test_partitions_a_and_c_slightly_slower_than_f(figure13):
    """"Partitions A and C are both slightly slower than F."""
    assert figure13["A"] > figure13["F"]
    assert figure13["C"] > figure13["F"]
    # C (windowing in HW, IMDCT in SW) is the worst configuration.
    assert figure13["C"] == max(figure13[letter] for letter in PARTITION_ORDER)


def test_ifft_only_offload_is_marginal(figure13):
    """Moving only the IFFT to hardware changes execution time by well under 2x."""
    ratio = figure13["A"] / figure13["F"]
    assert 1.0 < ratio < 1.5


def test_full_hw_backend_is_fastest(figure13):
    assert figure13["E"] == min(figure13[letter] for letter in PARTITION_ORDER)
    # And it is a substantial win over full software.
    assert figure13["F"] / figure13["E"] > 1.8


def test_hw_offload_of_imdct_pays_off(figure13):
    """B and D (IMDCT FSMs in hardware) beat the full-software partition."""
    assert figure13["B"] < figure13["F"]
    assert figure13["D"] < figure13["B"]


def test_systemc_roughly_3x_slower_than_generated(figure13):
    ratio = figure13["F1 (SystemC)"] / figure13["F"]
    assert 2.0 < ratio < 4.5


def test_handcoded_slightly_faster_than_generated(figure13):
    ratio = figure13["F"] / figure13["F2 (hand C++)"]
    assert 1.0 < ratio < 1.5


def test_all_partitions_completed(vorbis_results):
    assert all(result.completed for result in vorbis_results.values())
