"""Ablation of the Section 6.3 software optimisations (Figures 9/10).

The paper's software compilation strategy relies on four transformations to
approach hand-written performance: guard lifting, method inlining (which
enables dropping try/catch), sequentialisation of parallel actions, and
partial shadowing.  This benchmark runs the full-software Vorbis partition
under different optimisation configurations and checks that each mechanism
pulls in the expected direction.
"""

from __future__ import annotations

import pytest

from conftest import VORBIS_PARAMS, print_table, run_vorbis_partition
from repro.core.optimize import OptimizationConfig


@pytest.fixture(scope="module")
def ablation_results():
    configs = {
        "all optimisations (Fig. 10)": OptimizationConfig.all(),
        "no optimisations (Fig. 9)": OptimizationConfig.none(),
        "no guard lifting": OptimizationConfig(lift_guards=False),
        "no inlining (try/catch)": OptimizationConfig(inline_methods=False),
        "no partial shadowing": OptimizationConfig(partial_shadowing=False),
        "no sequentialisation": OptimizationConfig(sequentialize=False),
    }
    return {
        name: run_vorbis_partition("F", config=config) for name, config in configs.items()
    }


def test_ablation_table(ablation_results, benchmark):
    rows = {
        name: result.fpga_cycles / VORBIS_PARAMS.n_frames
        for name, result in ablation_results.items()
    }
    print_table(
        "Section 6.3 ablation: full-SW Vorbis under different compile schemes",
        rows,
        "FPGA cycles / frame",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(result.completed for result in ablation_results.values())


def test_all_configs_produce_identical_behaviour(ablation_results):
    """Optimisations change cost, never semantics: same firings in every config."""
    firings = {name: result.sw_firings for name, result in ablation_results.items()}
    assert len(set(firings.values())) == 1, firings


def test_fully_optimised_beats_naive(ablation_results):
    optimised = ablation_results["all optimisations (Fig. 10)"].fpga_cycles
    naive = ablation_results["no optimisations (Fig. 9)"].fpga_cycles
    assert naive > 1.15 * optimised


def test_guard_lifting_reduces_wasted_work(ablation_results):
    with_lifting = ablation_results["all optimisations (Fig. 10)"]
    without_lifting = ablation_results["no guard lifting"]
    assert without_lifting.sw_cpu_cycles_wasted > with_lifting.sw_cpu_cycles_wasted
    assert without_lifting.fpga_cycles >= with_lifting.fpga_cycles


def test_try_catch_avoidance_helps(ablation_results):
    optimised = ablation_results["all optimisations (Fig. 10)"].fpga_cycles
    try_catch = ablation_results["no inlining (try/catch)"].fpga_cycles
    assert try_catch >= optimised


def test_partial_shadowing_helps(ablation_results):
    optimised = ablation_results["all optimisations (Fig. 10)"].fpga_cycles
    full_shadow = ablation_results["no partial shadowing"].fpga_cycles
    assert full_shadow >= optimised
