"""Figure 14: the four HW/SW decompositions of the ray tracer.

Structural counterpart of the Figure 13 (right) performance benchmark:
regenerates the module placement and synchronizer cut of partitions A--D and
checks the properties the paper's figure conveys (A is all-software, C keeps
the scene memories next to the intersection hardware, B and D split the
memory from the engine that consumes it).
"""

from __future__ import annotations

import pytest

from repro.apps.raytracer.params import RayTracerParams
from repro.apps.raytracer.partitions import PARTITIONS, PARTITION_ORDER, build_partition
from repro.codegen.interface import build_interface_spec
from repro.core.domains import HW, SW
from repro.core.partition import partition_design

PARAMS = RayTracerParams(n_triangles=32, image_width=3, image_height=3)


@pytest.fixture(scope="module")
def partitionings():
    result = {}
    for letter in PARTITION_ORDER:
        tracer = build_partition(letter, PARAMS)
        result[letter] = (tracer, partition_design(tracer.design, SW))
    return result


def test_fig14_structure_table(partitionings, benchmark):
    print("\n=== Figure 14: ray-tracer partitions (module placement and cut) ===")
    for letter in PARTITION_ORDER:
        tracer, partitioning = partitionings[letter]
        hw_modules = sorted(m for m, d in tracer.placement.items() if d == HW)
        spec = build_interface_spec(partitioning)
        print(f"  partition {letter}: HW modules = {hw_modules or ['none']}")
        for line in spec.report().splitlines()[1:]:
            print("  " + line)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_partition_a_is_all_software(partitionings):
    _, partitioning = partitionings["A"]
    assert partitioning.cut == []


def test_partition_c_keeps_memories_with_the_engine(partitionings):
    """In C the memory request/response queues never cross the boundary."""
    _, partitioning = partitionings["C"]
    cut_names = {sync.name for sync in partitioning.cut}
    assert "bvh_req_q" not in cut_names
    assert "scene_req_q" not in cut_names
    assert {"ray_q", "color_q"} <= cut_names


def test_partition_b_splits_memory_from_traversal(partitionings):
    """In B every BVH and scene access crosses the boundary."""
    _, partitioning = partitionings["B"]
    cut_names = {sync.name for sync in partitioning.cut}
    assert {"bvh_req_q", "bvh_resp_q", "scene_req_q", "scene_resp_q"} <= cut_names


def test_partition_d_ships_leaf_bundles(partitionings):
    """In D only the geometry-intersection queues cross the boundary."""
    _, partitioning = partitionings["D"]
    cut_names = {sync.name for sync in partitioning.cut}
    assert cut_names == {"geom_req_q", "geom_resp_q"}


def test_leaf_bundle_is_the_largest_message(partitionings):
    _, partitioning = partitionings["D"]
    spec = build_interface_spec(partitioning)
    by_name = {ch.name: ch for ch in spec.channels}
    assert by_name["geom_req_q"].payload_words > by_name["geom_resp_q"].payload_words
