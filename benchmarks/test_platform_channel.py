"""Section 7 platform micro-benchmarks: synchronizer latency and bandwidth.

The paper reports, for its ML507 LocalLink/HDMA configuration, a round-trip
latency of approximately 100 FPGA cycles through the synchronizers and a
streaming bandwidth of up to 400 MB/s from DDR2 memory to the FPGA.  These
benchmarks measure the same two quantities on the channel model.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.platform.platform import Platform


@pytest.fixture(scope="module")
def ml507():
    return Platform.ml507()


def test_round_trip_latency_about_100_cycles(ml507, benchmark):
    rtt = benchmark.pedantic(
        lambda: ml507.channel.round_trip_latency_cycles, rounds=1, iterations=1
    )
    rtt = ml507.channel.round_trip_latency_cycles
    print_table("Synchronizer round trip (minimal message)", {"ml507": rtt}, "FPGA cycles")
    assert 80 <= rtt <= 160


def test_streaming_bandwidth_400_mb_per_s(ml507, benchmark):
    channel = ml507.channel
    # Stream a large burst and compute achieved bandwidth from occupancy.
    n_words = 100_000
    occupancy = benchmark.pedantic(
        lambda: channel.occupancy_cycles(n_words, burst=True), rounds=1, iterations=1
    )
    occupancy = channel.occupancy_cycles(n_words, burst=True)
    bytes_per_cycle = (n_words * channel.word_bits / 8) / occupancy
    mb_per_s = bytes_per_cycle * ml507.fpga_clock_hz / 1e6
    print_table("Streaming bandwidth (large DMA burst)", {"ml507": mb_per_s}, "MB/s")
    assert 350 <= mb_per_s <= 450


def test_word_transfers_are_much_slower_than_bursts(ml507):
    """The Section 2.1 granularity argument: per-word transactions waste the bus."""
    channel = ml507.channel
    frame_words = 128
    burst = channel.occupancy_cycles(frame_words, burst=True)
    word_at_a_time = channel.occupancy_cycles(frame_words, burst=False)
    assert word_at_a_time > 3 * burst


def test_cpu_to_fpga_clock_ratio(ml507):
    """The PPC440 runs at 400 MHz and the fabric at 100 MHz (Section 7)."""
    assert ml507.cpu_cycles_per_fpga_cycle == pytest.approx(4.0)
