"""Shared helpers for the benchmark harness.

Every benchmark prints the same rows/series the paper reports (execution
times in FPGA cycles per partition) and asserts the qualitative claims of
Section 7.  Workload sizes are reduced relative to the paper's 10 000-frame
audio test bench -- steady state is reached after a handful of frames and the
reported quantity is per-frame/per-ray, so the shape is unaffected.  See
EXPERIMENTS.md for the recorded numbers.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.apps.raytracer.params import RayTracerParams
from repro.apps.raytracer import partitions as rt_partitions
from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis import partitions as vorbis_partitions
from repro.core.optimize import OptimizationConfig
from repro.platform.platform import Platform
from repro.sim.cosim import Cosimulator, CosimResult

#: Benchmark workloads (small but past pipeline-fill effects).
VORBIS_PARAMS = VorbisParams(n_frames=12)
RAYTRACER_PARAMS = RayTracerParams(n_triangles=96, image_width=5, image_height=5)


def run_vorbis_partition(
    letter: str,
    params: VorbisParams = VORBIS_PARAMS,
    config: OptimizationConfig | None = None,
    burst: bool = True,
    platform: Platform | None = None,
    backend: str = "compiled",
) -> CosimResult:
    """Co-simulate one Vorbis partition and return its result.

    ``backend`` selects the execution backend (``"compiled"`` by default --
    the closure-compiled engines; ``"interp"`` for the tree-walking
    reference).  Both produce bitwise-identical results, which
    ``tests/test_compiled_backend.py`` verifies.
    """
    workload = vorbis_partitions.build_partition(letter, params)
    cosim = Cosimulator(
        workload.design,
        platform=platform or Platform.ml507(),
        config=config or OptimizationConfig.all(),
        burst=burst,
        backend=backend,
    )
    return cosim.run(workload.cosim_done, max_cycles=500_000_000)


def run_raytracer_partition(
    letter: str,
    params: RayTracerParams = RAYTRACER_PARAMS,
    burst: bool = True,
    backend: str = "compiled",
) -> CosimResult:
    """Co-simulate one ray-tracer partition and return its result."""
    tracer = rt_partitions.build_partition(letter, params)
    cosim = Cosimulator(tracer.design, burst=burst, backend=backend)
    return cosim.run(tracer.cosim_done, max_cycles=500_000_000)


def print_table(title: str, rows: Dict[str, float], unit: str) -> None:
    """Print a small aligned results table (the 'figure' output)."""
    print(f"\n=== {title} ===")
    width = max(len(k) for k in rows)
    for key, value in rows.items():
        print(f"  {key:<{width}}  {value:12.1f} {unit}")


@pytest.fixture(scope="session")
def vorbis_results() -> Dict[str, CosimResult]:
    """Co-simulation results of all six Vorbis partitions (computed once per session)."""
    return {
        letter: run_vorbis_partition(letter)
        for letter in vorbis_partitions.PARTITION_ORDER
    }


@pytest.fixture(scope="session")
def raytracer_results() -> Dict[str, CosimResult]:
    """Co-simulation results of all four ray-tracer partitions (computed once per session)."""
    return {
        letter: run_raytracer_partition(letter)
        for letter in rt_partitions.PARTITION_ORDER
    }
