"""Figure 13 (right): execution times of the ray-tracer partitions.

Regenerates the right-hand series of Figure 13 (partitions A--D of the ray
tracer, in FPGA cycles) and asserts the paper's claims:

* partition C (intersection engines plus on-chip scene/BVH block RAM in
  hardware) is the fastest configuration;
* partitions B and D, although they use hardware acceleration, are slower
  than the pure-software partition A because the communication cost
  outweighs the computation savings.
"""

from __future__ import annotations

import pytest

from conftest import RAYTRACER_PARAMS, print_table
from repro.apps.raytracer.partitions import PARTITION_ORDER, hw_module_names


@pytest.fixture(scope="module")
def figure13_rt(raytracer_results):
    return {letter: raytracer_results[letter].fpga_cycles for letter in PARTITION_ORDER}


def test_fig13_raytrace_table(figure13_rt, benchmark):
    rows = {
        f"{letter} [HW: {', '.join(hw_module_names(letter)) or 'none'}]": cycles
        / RAYTRACER_PARAMS.n_rays
        for letter, cycles in figure13_rt.items()
    }
    print_table("Figure 13 (right): ray tracer execution time", rows, "FPGA cycles / ray")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(value > 0 for value in figure13_rt.values())


def test_partition_c_is_fastest(figure13_rt):
    assert figure13_rt["C"] == min(figure13_rt.values())
    # It is a substantial win over the software baseline.
    assert figure13_rt["A"] / figure13_rt["C"] > 2.0


def test_partitions_b_and_d_lose_to_software(figure13_rt):
    """HW acceleration without co-locating the data is a net loss (B and D > A)."""
    assert figure13_rt["B"] > figure13_rt["A"]
    assert figure13_rt["D"] > figure13_rt["A"]


def test_memory_placement_dominates(figure13_rt):
    """B (traversal in HW, memories in SW) pays for every node fetch over the bus."""
    assert figure13_rt["B"] > figure13_rt["C"] * 2


def test_all_raytracer_partitions_completed(raytracer_results):
    assert all(result.completed for result in raytracer_results.values())
