"""Figure 12: the six HW/SW decompositions of the Vorbis back-end.

The paper's Figure 12 is structural: which modules sit on which side of the
boundary in each partition.  This benchmark regenerates that information from
the same source design by running the partitioner and the interface
generator on every placement, printing the module placement and the
synchronizer cut, and checking the structural invariants (F has an empty
cut, every other partition's cut carries exactly the stage-boundary queues
implied by its placement).
"""

from __future__ import annotations

import pytest

from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import (
    MULTI_PARTITION_ORDER,
    PARTITIONS,
    PARTITION_ORDER,
    build_multi_partition,
    build_partition,
)
from repro.codegen.interface import build_interface_spec
from repro.core.domains import HW, SW
from repro.core.partition import partition_design

PARAMS = VorbisParams(n_frames=2)


@pytest.fixture(scope="module")
def partitionings():
    result = {}
    for letter in PARTITION_ORDER:
        backend = build_partition(letter, PARAMS)
        result[letter] = (backend, partition_design(backend.design, SW))
    return result


@pytest.fixture(scope="module")
def multi_partitionings():
    result = {}
    for letter in MULTI_PARTITION_ORDER:
        backend = build_multi_partition(letter, PARAMS)
        result[letter] = (backend, partition_design(backend.design, SW))
    return result


def test_fig12_structure_table(partitionings, benchmark):
    print("\n=== Figure 12: Vorbis partitions (module placement and cut) ===")
    for letter in PARTITION_ORDER:
        backend, partitioning = partitionings[letter]
        hw_stages = sorted(s for s, d in backend.placement.items() if d == HW)
        spec = build_interface_spec(partitioning)
        print(f"  partition {letter}: HW stages = {hw_stages or ['none']}")
        for line in spec.report().splitlines()[1:]:
            print("  " + line)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_full_sw_partition_has_empty_cut(partitionings):
    _, partitioning = partitionings["F"]
    assert partitioning.cut == []


def test_every_hw_partition_has_a_cut(partitionings):
    for letter in PARTITION_ORDER:
        if letter == "F":
            continue
        _, partitioning = partitionings[letter]
        assert partitioning.cut, f"partition {letter} should cross the HW/SW boundary"


def test_cut_sizes_match_placements(partitionings):
    """The number of crossings equals the number of stage boundaries between domains."""
    expected_crossings = {"A": 2, "B": 2, "C": 4, "D": 2, "E": 2, "F": 0}
    for letter, expected in expected_crossings.items():
        _, partitioning = partitionings[letter]
        assert len(partitioning.cut) == expected, letter


def test_interface_spec_word_counts(partitionings):
    """The generated interface sizes messages from the canonical type layouts."""
    _, partitioning = partitionings["A"]
    spec = build_interface_spec(partitioning)
    by_name = {ch.name: ch for ch in spec.channels}
    # A 64-point complex frame in 32/24 fixed point occupies 128 payload words.
    assert by_name["q_pre"].payload_words == 128
    assert by_name["q_ifft"].payload_words == 128


def test_rules_assigned_to_one_domain_each(partitionings):
    for letter in PARTITION_ORDER:
        _, partitioning = partitionings[letter]
        all_rules = set(partitioning.design.all_rules())
        assigned = [r for prog in partitioning.programs.values() for r in prog.rules]
        assert len(assigned) == len(all_rules)
        assert set(assigned) == all_rules


# -- multi-domain partitions (G, H): link-granular structure -----------------


def test_fig12_multidomain_structure_table(multi_partitionings, benchmark):
    print("\n=== Figure 12 (extended): multi-domain Vorbis partitions (route-keyed) ===")
    for letter in MULTI_PARTITION_ORDER:
        backend, partitioning = multi_partitionings[letter]
        spec = build_interface_spec(partitioning)
        domains = "+".join(d.name for d in partitioning.domains)
        print(f"  partition {letter}: domains = {domains}")
        for line in spec.link_report().splitlines()[1:]:
            print("  " + line)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_multidomain_link_counts(multi_partitionings):
    """G cuts the back-end into 3 domains (3 routes), H into 4 (5 routes)."""
    expected_routes = {"G": 3, "H": 5}
    for letter, expected in expected_routes.items():
        _, partitioning = multi_partitionings[letter]
        spec = build_interface_spec(partitioning)
        assert len(spec.links) == expected, letter
        assert len(spec.links) == len(partitioning.route_pairs())


def test_multidomain_transactor_pairs_cover_every_route(multi_partitionings):
    for letter in MULTI_PARTITION_ORDER:
        _, partitioning = multi_partitionings[letter]
        spec = build_interface_spec(partitioning)
        pairs = spec.transactor_pairs()
        assert list(pairs) == [f"{s}->{d}" for s, d in partitioning.route_pairs()]
        names = [n for pair in pairs.values() for n in pair]
        assert len(set(names)) == len(names)
