"""Wall-clock performance harness for the two execution backends.

Runs the Figure 13 workloads -- every Ogg Vorbis partition (A-F) and every
ray-tracer partition (A-D) -- under both the tree-walking reference backend
(``interp``) and the closure-compiled backend with dirty-set scheduling
(``compiled``), and records per-workload wall-clock seconds, rule firings
per second and simulated FPGA cycles.

Outputs one JSON file per backend next to this script (``BENCH_interp.json``
and ``BENCH_compiled.json``) so future PRs have a perf trajectory to regress
against, and prints a comparison table.  The harness also *verifies* the
backends agree: every workload's :class:`~repro.sim.cosim.CosimResult`
(stores statistics, fire counts, channel stats) must be bitwise identical
between the two, otherwise the run fails.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py           # full run
    PYTHONPATH=src python benchmarks/perf_harness.py --quick   # CI smoke run

Timing methodology: each workload's design is elaborated once (both backends
execute the *same* immutable design, mirroring the paper's compile-once /
run-many model); the measured quantity is the best of ``--repeats``
co-simulation runs, which is the standard way to suppress scheduler noise on
shared machines.  One-time closure-compilation cost is reported separately
as ``compile_seconds``.
"""

from __future__ import annotations

import argparse
import json
import platform as platform_mod
import sys
import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.raytracer import partitions as rt_partitions
from repro.apps.raytracer.params import RayTracerParams
from repro.apps.vorbis import partitions as vorbis_partitions
from repro.apps.vorbis.params import VorbisParams
from repro.sim.cosim import Cosimulator

BACKENDS = ("interp", "compiled")

#: Figure 13 workload sizes.  ``full`` uses larger inputs than the benchmark
#: suite's quick defaults so steady-state rule throughput dominates startup
#: (the paper's audio test bench ran 10 000 frames); ``quick`` matches the
#: suite's sizes and is meant for CI smoke runs.
SIZES = {
    "full": {
        "vorbis": VorbisParams(n_frames=48),
        "raytracer": RayTracerParams(n_triangles=96, image_width=8, image_height=8),
    },
    "quick": {
        "vorbis": VorbisParams(n_frames=12),
        "raytracer": RayTracerParams(n_triangles=96, image_width=5, image_height=5),
    },
}


def build_workloads(size: str):
    """Elaborate every fig13 partition once; returns ``[(name, backend_obj)]``."""
    params = SIZES[size]
    workloads = []
    for letter in vorbis_partitions.PARTITION_ORDER:
        workloads.append(
            (f"vorbis_{letter}", vorbis_partitions.build_partition(letter, params["vorbis"]))
        )
    for letter in rt_partitions.PARTITION_ORDER:
        workloads.append(
            (f"raytracer_{letter}", rt_partitions.build_partition(letter, params["raytracer"]))
        )
    return workloads


def run_once(workload, backend: str):
    cosim = Cosimulator(workload.design, backend=backend)
    result = cosim.run(workload.cosim_done, max_cycles=500_000_000)
    return result


def measure(workload, backend: str, repeats: int) -> Dict[str, Any]:
    # First run pays one-time compilation/analysis for this design+backend.
    t0 = time.perf_counter()
    result = run_once(workload, backend)
    first = time.perf_counter() - t0

    best = first
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_once(workload, backend)
        best = min(best, time.perf_counter() - t0)

    firings = result.sw_firings + result.hw_firings
    return {
        "wall_seconds": best,
        "compile_seconds": max(0.0, first - best),
        "firings": firings,
        "firings_per_sec": firings / best if best > 0 else float("inf"),
        "fpga_cycles": result.fpga_cycles,
        "completed": result.completed,
        "result": asdict(result),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workloads, 1 repeat (CI smoke run)"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timed repetitions per workload (best-of)"
    )
    parser.add_argument(
        "--out-dir", type=Path, default=Path(__file__).resolve().parent,
        help="directory for BENCH_<backend>.json",
    )
    args = parser.parse_args(argv)
    size = "quick" if args.quick else "full"
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 5)

    workloads = build_workloads(size)
    bench: Dict[str, Dict[str, Any]] = {backend: {} for backend in BACKENDS}
    mismatches = []

    for name, workload in workloads:
        for backend in BACKENDS:
            bench[backend][name] = measure(workload, backend, repeats)
        if bench["interp"][name]["result"] != bench["compiled"][name]["result"]:
            mismatches.append(name)

    # -- report ------------------------------------------------------------
    header = f"{'workload':<14} {'interp (s)':>11} {'compiled (s)':>13} {'speedup':>8} {'firings/s (compiled)':>21}"
    print("\n=== Figure 13 workloads: interp vs. compiled backend ===")
    print(header)
    print("-" * len(header))
    total = {backend: 0.0 for backend in BACKENDS}
    for name, _ in workloads:
        ti = bench["interp"][name]["wall_seconds"]
        tc = bench["compiled"][name]["wall_seconds"]
        total["interp"] += ti
        total["compiled"] += tc
        print(
            f"{name:<14} {ti:>11.4f} {tc:>13.4f} {ti / tc:>7.2f}x "
            f"{bench['compiled'][name]['firings_per_sec']:>20,.0f}"
        )
    aggregate = total["interp"] / total["compiled"]
    print("-" * len(header))
    print(
        f"{'TOTAL':<14} {total['interp']:>11.4f} {total['compiled']:>13.4f} {aggregate:>7.2f}x"
    )
    if mismatches:
        print(f"\nBACKEND MISMATCH on: {', '.join(mismatches)}")
    else:
        print("\nAll CosimResult statistics bitwise identical across backends.")

    # -- persist -----------------------------------------------------------
    meta = {
        "size": size,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "machine": platform_mod.machine(),
        "aggregate_wall_seconds": None,  # per-file below
    }
    args.out_dir.mkdir(parents=True, exist_ok=True)
    for backend in BACKENDS:
        payload = {
            "meta": {**meta, "backend": backend, "aggregate_wall_seconds": total[backend]},
            "workloads": {
                name: {k: v for k, v in stats.items() if k != "result"}
                for name, stats in bench[backend].items()
            },
        }
        # Quick (CI smoke) runs get their own files so they never clobber
        # the committed full-size trajectory that EXPERIMENTS.md records.
        suffix = "_quick" if size == "quick" else ""
        out_path = args.out_dir / f"BENCH_{backend}{suffix}.json"
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out_path}")

    return 1 if mismatches else 0


if __name__ == "__main__":
    raise SystemExit(main())
