"""Wall-clock performance harness for the three execution backends.

Runs the Figure 13 workloads -- every Ogg Vorbis partition (A-F) and every
ray-tracer partition (A-D) -- plus the multi-domain fabric workload
(``vorbis_G3``: SW front-end -> HW-imdct/ifft -> HW-window, three engines
on a routed topology), under the tree-walking reference backend
(``interp``), the closure-compiled backend with dirty-set scheduling
(``compiled``) and the source-lowered backend (``source``: one generated
flat Python module per design, fused engine supersteps -- see
:mod:`repro.core.pycodegen`), and records per-workload wall-clock seconds,
rule firings per second and simulated FPGA cycles.

Outputs one JSON file per backend next to this script
(``BENCH_interp.json``, ``BENCH_compiled.json`` and ``BENCH_source.json``)
so future PRs have a perf trajectory to regress against, and prints a
comparison table.  The harness also *verifies* the backends agree: every
workload's :class:`~repro.sim.cosim.CosimResult` (stores statistics, fire
counts, channel stats) must be bitwise identical across all three,
otherwise the run fails.

Two extra sections ride along:

* a **transport ablation** (interpreted per-element transport vs. the
  closure-compiled batch-drain dataplane, rule backend held at
  ``compiled``), recorded under ``transport_ablation`` in
  ``BENCH_compiled.json``;
* an optional **sharded sweep** (``--processes N``): the same workload set
  fanned across worker processes by :mod:`repro.sim.shard`, reported as
  sweep wall-clock vs. serial-equivalent compute and recorded under
  ``sweep`` in ``BENCH_compiled.json``;
* a **persistent serving** section: a small-frame Vorbis request stream
  through one resident :class:`~repro.sim.serve.FabricServer`
  (elaborate once, snapshot/reset per request) vs. the
  elaborate-per-request baseline, recording sustained requests/sec and
  p50/p99 request latency under ``serving`` in ``BENCH_compiled.json``;
* a **grouped execution** section: a multi-group workload (independent
  Vorbis pipelines in one design, one fabric group each) run three ways --
  the legacy lockstep loop, the fabric's serially scheduled group
  sub-fabrics (per-group clocks and idle-skip), and
  :func:`repro.sim.shard.run_grouped` fanning the groups of that *single*
  design across processes -- recorded under ``grouped_execution`` in
  ``BENCH_compiled.json``.  The serial and process-grouped merged results
  must be bitwise identical (the run fails otherwise) and the lockstep
  baseline must agree on firings, traffic and checksums;
* a **distributed execution** section: multi-domain (G/H) and multi-group
  (mg_BC/mg_BCF) workloads run under :func:`repro.sim.distrib.run_distributed`
  -- groups/domains in long-lived worker processes, cut links as framed
  wire words over shared-memory rings and socket streams -- against the
  serial grouped and lockstep schedulers, recorded under ``distributed``
  in ``BENCH_compiled.json``.  Every distributed result must be bitwise
  identical to the serial grouped run on both carriers.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py               # full run
    PYTHONPATH=src python benchmarks/perf_harness.py --quick       # CI smoke run
    PYTHONPATH=src python benchmarks/perf_harness.py --processes 4 # + sharded sweep

Timing methodology: each workload's design is elaborated once (both backends
execute the *same* immutable design, mirroring the paper's compile-once /
run-many model); the measured quantity is the best of ``--repeats``
co-simulation runs, which is the standard way to suppress scheduler noise on
shared machines.  One-time closure-compilation cost is reported separately
as ``compile_seconds``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import sys
import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.raytracer import partitions as rt_partitions
from repro.apps.raytracer.params import RayTracerParams
from repro.apps.vorbis import partitions as vorbis_partitions
from repro.apps.vorbis.params import VorbisParams
from repro.sim.cosim import CosimFabric, Cosimulator
from repro.sim.shard import SweepTask, run_sweep

BACKENDS = ("interp", "compiled", "source")

#: The backends whose results are differentially verified against ``interp``.
FAST_BACKENDS = ("compiled", "source")

#: Multi-domain fabric workloads: name -> (builder letter, #domains).
MULTI_DOMAIN = {"vorbis_G3": "G"}

#: Channel-heavy workloads used for the transport ablation.  ``xfer_stress``
#: is the dedicated dataplane stressor (deep synchronizers, bursty
#: producers); the others show the ablation's effect on application mixes.
TRANSPORT_ABLATION = ("xfer_stress", "vorbis_A", "vorbis_C", "raytracer_B", "vorbis_G3")

#: Figure 13 workload sizes.  ``full`` uses larger inputs than the benchmark
#: suite's quick defaults so steady-state rule throughput dominates startup
#: (the paper's audio test bench ran 10 000 frames); ``quick`` matches the
#: suite's sizes and is meant for CI smoke runs.
SIZES = {
    "full": {
        "vorbis": VorbisParams(n_frames=48),
        "raytracer": RayTracerParams(n_triangles=96, image_width=8, image_height=8),
    },
    "quick": {
        "vorbis": VorbisParams(n_frames=12),
        "raytracer": RayTracerParams(n_triangles=96, image_width=5, image_height=5),
    },
}


class TransportStress:
    """A workload whose run time is dominated by the transport dataplane.

    SW fills a deep synchronizer in bursts (the ``xferSW`` idiom of Section
    6.3: a ``Loop`` that enqueues until the FIFO is full), HW echoes every
    element back, SW drains the return FIFO in bursts.  Rule work is a
    single add per element, so nearly all simulated activity is credit
    accounting, FIFO draining and message delivery -- exactly what the
    compiled dataplane lowers to closures, and the worst case for the old
    per-element tuple re-slicing (queues hundreds of elements deep).
    """

    def __init__(self, n_items: int = 4096, depth: int = 256):
        from repro.core.action import Loop, par, seq
        from repro.core.domains import HW, SW
        from repro.core.expr import BinOp, Const, RegRead
        from repro.core.module import Design, Module
        from repro.core.synchronizers import SyncFifo
        from repro.core.types import UIntT

        self.n_items = n_items
        top = Module("top")
        swm = top.add_submodule(Module("swside", domain=SW))
        hwm = top.add_submodule(Module("hwside", domain=HW))
        q_in = top.add_submodule(SyncFifo("q_in", UIntT(32), SW, HW, depth=depth))
        q_out = top.add_submodule(SyncFifo("q_out", UIntT(32), HW, SW, depth=depth))
        cnt = swm.add_register("cnt", UIntT(32), 0)
        acc = swm.add_register("acc", UIntT(32), 0)
        self.ndone = swm.add_register("ndone", UIntT(32), 0)
        more = BinOp("<", RegRead(cnt), Const(n_items))
        swm.add_rule(
            "burst_produce",
            Loop(
                BinOp("&&", q_in.value("notFull"), more),
                seq(q_in.call("enq", RegRead(cnt)), cnt.write(BinOp("+", RegRead(cnt), Const(1)))),
                max_iterations=depth + 1,
            ).when(BinOp("&&", q_in.value("notFull"), more)),
        )
        hwm.add_rule(
            "echo",
            par(
                q_out.call("enq", BinOp("+", q_in.value("first"), Const(1))),
                q_in.call("deq"),
            ),
        )
        swm.add_rule(
            "burst_collect",
            Loop(
                q_out.value("notEmpty"),
                seq(
                    acc.write(BinOp("+", RegRead(acc), q_out.value("first"))),
                    q_out.call("deq"),
                    self.ndone.write(BinOp("+", RegRead(self.ndone), Const(1))),
                ),
                max_iterations=depth + 1,
            ).when(q_out.value("notEmpty")),
        )
        self.design = Design(top, "xfer_stress")

    def cosim_done(self, cosim) -> bool:
        return cosim.read(self.ndone) >= self.n_items


#: Transport-stress sizes (items echoed across the channel and back).
STRESS_SIZES = {"full": 8192, "quick": 2048}


def build_workloads(size: str):
    """Elaborate every fig13 partition plus the multi-domain fabric workloads.

    Returns ``[(name, workload, is_fabric)]``; fabric workloads run on
    :class:`CosimFabric` (N engines), the rest on the two-partition wrapper.
    """
    params = SIZES[size]
    workloads = []
    for letter in vorbis_partitions.PARTITION_ORDER:
        workloads.append(
            (f"vorbis_{letter}", vorbis_partitions.build_partition(letter, params["vorbis"]), False)
        )
    for letter in rt_partitions.PARTITION_ORDER:
        workloads.append(
            (f"raytracer_{letter}", rt_partitions.build_partition(letter, params["raytracer"]), False)
        )
    for name, letter in MULTI_DOMAIN.items():
        workloads.append(
            (name, vorbis_partitions.build_multi_partition(letter, params["vorbis"]), True)
        )
    return workloads


def run_once(workload, backend: str, is_fabric: bool = False, transport=None):
    if is_fabric:
        sim = CosimFabric(workload.design, backend=backend, transport=transport)
    else:
        sim = Cosimulator(workload.design, backend=backend, transport=transport)
    return sim.run(workload.cosim_done, max_cycles=500_000_000)


def measure(workload, backend: str, repeats: int, is_fabric: bool = False, transport=None) -> Dict[str, Any]:
    # First run pays one-time compilation/analysis for this design+backend.
    t0 = time.perf_counter()
    result = run_once(workload, backend, is_fabric, transport)
    first = time.perf_counter() - t0

    best = first
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_once(workload, backend, is_fabric, transport)
        best = min(best, time.perf_counter() - t0)

    firings = result.sw_firings + result.hw_firings
    return {
        "wall_seconds": best,
        "compile_seconds": max(0.0, first - best),
        "firings": firings,
        "firings_per_sec": firings / best if best > 0 else float("inf"),
        "fpga_cycles": result.fpga_cycles,
        "completed": result.completed,
        "result": asdict(result),
    }


def transport_ablation(
    workloads, repeats: int, size: str, compiled_stats: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Interpreted vs. compiled transport, rule backend held at ``compiled``.

    ``compiled_stats`` (the main loop's per-workload measurements of the
    compiled backend, whose default transport *is* compiled) is reused as
    the compiled arm, so only the interpreted-transport arm re-simulates.
    """
    by_name = {name: (workload, is_fabric) for name, workload, is_fabric in workloads}
    by_name["xfer_stress"] = (TransportStress(n_items=STRESS_SIZES[size]), False)
    rows: Dict[str, Any] = {}
    for name in TRANSPORT_ABLATION:
        if name not in by_name:
            continue
        workload, is_fabric = by_name[name]
        stats = {
            "interp": measure(workload, "compiled", repeats, is_fabric, transport="interp")
        }
        if compiled_stats is not None and name in compiled_stats:
            stats["compiled"] = compiled_stats[name]
        else:
            stats["compiled"] = measure(
                workload, "compiled", repeats, is_fabric, transport="compiled"
            )
        if stats["interp"]["result"] != stats["compiled"]["result"]:
            raise SystemExit(f"transport backends disagree on {name}")
        rows[name] = {
            "interp_transport_seconds": stats["interp"]["wall_seconds"],
            "compiled_transport_seconds": stats["compiled"]["wall_seconds"],
            "speedup": stats["interp"]["wall_seconds"] / stats["compiled"]["wall_seconds"],
            "channel_messages": stats["compiled"]["result"]["channel_messages"],
        }
    return rows


def dataplane_microbench(size: str) -> Dict[str, Any]:
    """Pure transport throughput: the dataplane without the rule engines.

    Builds a rule-less two-domain design whose only module is one deep
    synchronizer, then drives pump/deliver directly: refill the producer
    endpoint with a full burst, pump until the burst is across, drain the
    consumer endpoint (returning credits), repeat.  Both transport modes
    move exactly the same messages; the measured quantity is elements/sec
    through the dataplane alone, which is what
    :func:`repro.core.compile.compile_transport_pump` actually compiled
    (the end-to-end ablation rows dilute it with rule execution).
    """
    from repro.core.domains import HW, SW
    from repro.core.module import Design, Module
    from repro.core.synchronizers import SyncFifo
    from repro.core.types import UIntT

    n_elements = {"full": 200_000, "quick": 40_000}[size]
    rows: Dict[str, Any] = {}
    for depth in (16, 256, 1024):
        timings: Dict[str, float] = {}
        for mode in ("interp", "compiled"):
            top = Module("top")
            top.add_submodule(Module("swside", domain=SW))
            top.add_submodule(Module("hwside", domain=HW))
            sync = top.add_submodule(SyncFifo("q", UIntT(32), SW, HW, depth=depth))
            cosim = Cosimulator(Design(top, "dataplane"), backend="compiled", transport=mode)
            data = sync.data
            src, dst = cosim.store_sw, cosim.store_hw
            burst = tuple(range(depth))
            moved = 0
            now = 0.0
            t0 = time.perf_counter()
            while moved < n_elements:
                src[data] = burst
                while src[data] or cosim.topology.next_delivery_time() is not None:
                    cosim._pump_transport(now)
                    next_delivery = cosim.topology.next_delivery_time()
                    now = max(now + 1.0, next_delivery if next_delivery is not None else now)
                    cosim._deliver_due(now)
                    dst[data] = ()  # consumer drains instantly; credits return
                moved += depth
            timings[mode] = time.perf_counter() - t0
            assert cosim.topology.total_messages == moved, "dataplane lost messages"
        rows[f"depth_{depth}"] = {
            "elements": moved,
            "interp_seconds": timings["interp"],
            "compiled_seconds": timings["compiled"],
            "interp_elements_per_sec": moved / timings["interp"],
            "compiled_elements_per_sec": moved / timings["compiled"],
            "speedup": timings["interp"] / timings["compiled"],
        }
    return rows


def kernel_microbench(size: str) -> Dict[str, Any]:
    """Per-kernel throughput of the foreign-kernel dataplane.

    Times each hot kernel under every available backend -- ``oracle``
    (object-based reference), ``python`` (flat raw-int batch loops) and,
    when importable, ``numpy`` (int64 vectorised) -- with the result cache
    disabled so the numbers measure computation, not memoisation.  The
    suite covers the IMDCT stages (``imdct_pre``, ``ifft_full``,
    ``imdct_post``), windowing (``window_overlap``), BVH traversal over a
    full camera's rays, and the fused frame marshal (layout encoder+decoder
    vs. the reference ``ty.pack``/``ty.unpack`` path).  Every backend's
    outputs are verified bit-identical before anything is timed.
    """
    import random

    from repro.apps.raytracer import bvh as rt_bvh
    from repro.apps.raytracer import geometry
    from repro.apps.vorbis import kernels
    from repro.core import kernelcompile as kc
    from repro.core.fixedpoint import FixComplex, FixedPoint
    from repro.core.types import ComplexT, FixPtT, VectorT

    n = {"full": 256, "quick": 64}[size]
    reps = {"full": 30, "quick": 8}[size]
    ib, fb = 8, 24
    rng = random.Random(1234)

    def rand_fix():
        return FixedPoint.from_raw(rng.randrange(-(1 << 31), 1 << 31), ib, fb)

    frame = tuple(rand_fix() for _ in range(n))
    half = frame[: n // 2]
    spectrum = tuple(FixComplex(rand_fix(), rand_fix()) for _ in range(n))

    vorbis_cases = {
        "imdct_pre": lambda: kernels.imdct_pre(frame, ib, fb),
        "ifft_full": lambda: kernels.ifft_full(spectrum, ib, fb),
        "imdct_post": lambda: kernels.imdct_post(spectrum, ib, fb),
        "window_overlap": lambda: kernels.window_overlap(half, frame, ib, fb),
    }

    scene = geometry.generate_scene(96, seed=7)
    tree = rt_bvh.build_bvh(scene)
    rays = [geometry.camera_ray(p, 8, 8) for p in range(64)]

    def traverse_all():
        for ray in rays:
            rt_bvh.traverse(tree, ray)
        return rt_bvh.traverse(tree, rays[0])

    cases = dict(vorbis_cases)
    cases["bvh_traverse_64rays"] = traverse_all

    backends = ["oracle", "python"] + (["numpy"] if kc.HAVE_NUMPY else [])

    def best_per_call(fn, repetitions, attempts=3):
        best = None
        for _ in range(attempts):
            t0 = time.perf_counter()
            for _ in range(repetitions):
                fn()
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        return best / repetitions

    rows: Dict[str, Any] = {}
    with kc.kernel_cache_override(False):
        for name, fn in cases.items():
            outputs = {}
            timings = {}
            for backend in backends:
                with kc.kernel_backend_override(backend):
                    outputs[backend] = fn()
                    timings[backend] = best_per_call(fn, reps)
            for backend in backends[1:]:
                if outputs[backend] != outputs["oracle"]:
                    raise SystemExit(f"kernel backend mismatch on {name} ({backend})")
            row = {f"{backend}_seconds": timings[backend] for backend in backends}
            for backend in backends[1:]:
                row[f"{backend}_speedup"] = timings["oracle"] / timings[backend]
            rows[name] = row

    # Fused frame marshal vs. the reference pack/unpack (one audio frame).
    from repro.platform import marshal as marshal_mod

    frame_ty = VectorT(n, ComplexT(FixPtT(ib, fb)))
    layout = marshal_mod.layout_for(frame_ty, 32)
    encode = layout.encoder(1)
    decode = layout.decoder()
    words = encode(spectrum)
    assert decode(words, 1) == spectrum

    def reference_roundtrip():
        framed = marshal_mod.marshal_message(1, frame_ty, spectrum)
        return marshal_mod.demarshal_message(frame_ty, framed)

    def fused_roundtrip():
        return decode(encode(spectrum), 1)

    assert reference_roundtrip()[1] == fused_roundtrip()
    ref_s = best_per_call(reference_roundtrip, reps)
    fused_s = best_per_call(fused_roundtrip, reps)
    rows["frame_marshal"] = {
        "reference_seconds": ref_s,
        "fused_seconds": fused_s,
        "fused_speedup": ref_s / fused_s,
    }
    return rows


#: Multi-group workload composition per size: one partition letter per
#: independent pipeline.  Asymmetric letters (B finishes well before C)
#: are the case per-group clocks exist for: under the lockstep baseline
#: the finished pipeline keeps getting scheduler attention for the whole
#: tail of the slow one.
GROUPED_LETTERS = {"full": "BC", "quick": "BC"}


def grouped_execution(size: str, repeats: int, processes: int = 2) -> Dict[str, Any]:
    """Lockstep vs. serially grouped vs. process-grouped on a ≥2-group design.

    Measured for both rule backends: under ``interp`` the win is
    structural (lockstep re-scans every finished group's guards on every
    cycle of the survivors; per-group clocks drop those scans entirely),
    while under ``compiled`` the dirty-set scheduler already sleeps idle
    groups almost for free and the win is the removed per-iteration
    cross-group bookkeeping.  The process row reuses the compiled arm;
    its wall-clock win materialises on multi-core hosts (pool spawn plus
    CPU contention make it a wash on single-core runners -- the recorded
    numbers say which this was).
    """
    from repro.apps.vorbis.partitions import build_group_partition
    from repro.apps.vorbis.reference import expected_checksum
    from repro.sim.shard import run_grouped

    letters = GROUPED_LETTERS[size]
    params = SIZES[size]["vorbis"]
    reference = expected_checksum(params)
    attempts = min(repeats, 2) + 1  # best-of; the +1 absorbs compilation

    def best_of(run_fn):
        best = None
        keep = None
        for _ in range(attempts):
            t0 = time.perf_counter()
            outcome = run_fn()
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best, keep = elapsed, outcome
        return best, keep

    def run_scheduler(scheduler, backend):
        workload = build_group_partition(letters, params)
        fabric = CosimFabric(workload.design, backend=backend)
        result = fabric.run(
            workload.cosim_done, max_cycles=500_000_000, scheduler=scheduler
        )
        return result, workload.checksums(fabric.read)

    rows: Dict[str, Any] = {
        "letters": letters,
        "groups": len(letters),
        "processes": processes,
    }
    grouped_results = {}
    for backend in BACKENDS:
        lock_seconds, (lock_result, lock_sums) = best_of(
            lambda: run_scheduler("lockstep", backend)
        )
        grouped_seconds, (grouped_result, grouped_sums) = best_of(
            lambda: run_scheduler("grouped", backend)
        )
        grouped_results[backend] = grouped_result
        if any(c != reference for c in grouped_sums + lock_sums):
            raise SystemExit(f"grouped workload {letters} checksum mismatch ({backend})")
        if (
            lock_result.fire_counts != grouped_result.fire_counts
            or lock_result.channel_messages != grouped_result.channel_messages
            or lock_result.hw_active_cycles != grouped_result.hw_active_cycles
            or lock_result.sw_firings != grouped_result.sw_firings
        ):
            raise SystemExit(
                f"lockstep baseline disagrees with grouped execution ({backend})"
            )
        rows[backend] = {
            "lockstep_seconds": lock_seconds,
            "grouped_seconds": grouped_seconds,
            "grouped_speedup_vs_lockstep": lock_seconds / grouped_seconds,
        }
    for backend in BACKENDS[1:]:
        if asdict(grouped_results["interp"]) != asdict(grouped_results[backend]):
            raise SystemExit(f"grouped execution backends disagree ({backend})")

    process_seconds, process_report = best_of(
        lambda: run_grouped(
            build_group_partition, args=(letters, params), processes=processes
        )
    )
    if asdict(process_report.result) != asdict(grouped_results["compiled"]):
        raise SystemExit(
            "process-grouped merged CosimResult diverged from the serial grouped run"
        )
    rows["fpga_cycles"] = grouped_results["compiled"].fpga_cycles
    rows["process_seconds"] = process_seconds
    rows["process_speedup_vs_grouped"] = (
        rows["compiled"]["grouped_seconds"] / process_seconds
    )
    rows["cpus"] = os.cpu_count() or 1
    return rows


#: Distributed-execution benchmark set: workload name -> (builder kind,
#: letter arg, placement).  The multi-domain placements G/H exercise
#: domain placement (every cut link becomes framed wire words between
#: processes); the multi-group workloads exercise group placement (one
#: process per independent pipeline) and, for BCF, domain placement too.
DISTRIBUTED_WORKLOADS = {
    "full": [
        ("vorbis_G", "multi", "G", "domain"),
        ("vorbis_H", "multi", "H", "domain"),
        ("vorbis_mg_BC", "group", "BC", "group"),
        ("vorbis_mg_BCF", "group", "BCF", "domain"),
    ],
    "quick": [
        ("vorbis_G", "multi", "G", "domain"),
        ("vorbis_mg_BC", "group", "BC", "group"),
    ],
}


def distributed_execution(size: str, repeats: int, processes: int = 2) -> Dict[str, Any]:
    """Serial grouped vs. lockstep vs. distributed workers on the same design.

    The distributed rows pay real costs the serial schedulers do not --
    process spawn, per-member re-elaboration, barrier spins and the
    physical word copies -- in exchange for running members on separate
    cores.  The recorded ``cpus`` field says whether this host could
    actually overlap them: on a single-CPU runner the distributed arm is
    expected to *lose* wall-clock (every barrier is a context switch), and
    the numbers are recorded as the protocol baseline rather than the
    claim; see EXPERIMENTS.md for the multi-core measurement protocol.
    Both carriers are measured; results must stay bitwise identical to the
    serial grouped run (the run fails otherwise).
    """
    from repro.apps.vorbis.partitions import build_group_partition, build_multi_partition
    from repro.sim.distrib import run_distributed

    params = SIZES[size]["vorbis"]
    attempts = min(repeats, 2) + 1  # best-of; the +1 absorbs compilation

    def best_of(run_fn):
        best = None
        keep = None
        for _ in range(attempts):
            t0 = time.perf_counter()
            outcome = run_fn()
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best, keep = elapsed, outcome
        return best, keep

    rows: Dict[str, Any] = {"processes": processes, "cpus": os.cpu_count() or 1}
    workload_rows: Dict[str, Any] = {}
    for name, kind, letter, placement in DISTRIBUTED_WORKLOADS[size]:
        builder = build_multi_partition if kind == "multi" else build_group_partition

        def run_scheduler(scheduler):
            workload = builder(letter, params)
            fabric = CosimFabric(workload.design, backend="compiled")
            return fabric.run(
                workload.cosim_done, max_cycles=500_000_000, scheduler=scheduler
            )

        grouped_seconds, grouped_result = best_of(lambda: run_scheduler("grouped"))
        lockstep_seconds, lockstep_result = best_of(lambda: run_scheduler("lockstep"))
        if lockstep_result.fire_counts != grouped_result.fire_counts:
            raise SystemExit(f"lockstep disagrees with grouped on {name}")

        row: Dict[str, Any] = {
            "placement": placement,
            "fpga_cycles": grouped_result.fpga_cycles,
            "grouped_seconds": grouped_seconds,
            "lockstep_seconds": lockstep_seconds,
        }
        for carrier in ("shm", "socket"):
            dist_seconds, report = best_of(
                lambda: run_distributed(
                    builder,
                    (letter, params),
                    backend="compiled",
                    placement=placement,
                    carrier=carrier,
                    processes=processes,
                )
            )
            if asdict(report.result) != asdict(grouped_result):
                raise SystemExit(
                    f"distributed ({placement}/{carrier}) diverged from the "
                    f"serial grouped run on {name}"
                )
            row[carrier] = {
                "seconds": dist_seconds,
                "speedup_vs_grouped": grouped_seconds / dist_seconds,
                "workers": report.processes,
                "records": report.data_plane["records"],
                "words": report.data_plane["words"],
                "full_retries": report.data_plane["full_retries"],
                "fallback": report.fallback,
            }
        workload_rows[name] = row
    rows["workloads"] = workload_rows
    return rows


#: Serving benchmark composition: a small-frame Vorbis workload in the
#: small-request regime (single-frame decodes, so elaboration dominates
#: the per-request baseline) and the stream length.  The embedded oracle
#: check still exercises every distinct start frame; randomized
#: mixed-input streams are covered by ``tests/test_serve.py``.
SERVING = {
    "full": {"params": VorbisParams(n=16, n_frames=2), "requests": 200},
    "quick": {"params": VorbisParams(n=16, n_frames=2), "requests": 40},
}


def serving_benchmark(size: str) -> Dict[str, Any]:
    """Resident-fabric serving vs. the elaborate-per-request baseline.

    The resident arm elaborates once and streams every request through one
    :class:`~repro.sim.serve.FabricServer` (snapshot/reset between
    requests); the baseline arm serves the same stream through
    :func:`~repro.sim.serve.serve_fresh`, paying full elaboration per
    request -- exactly what every pre-serving entry point did.  Both arms
    must agree bitwise on a sampled request (the serving acceptance
    oracle).  Latency percentiles are per-request wall times: the
    repo's first latency metrics, since throughput-only numbers hide the
    tail that snapshot restore could add.
    """
    from repro.sim.serve import FabricServer, ServingStats, safe_ratio, serve_fresh

    config = SERVING[size]
    params = config["params"]
    builder = vorbis_partitions.build_partition
    spec = ("B", params)

    server = FabricServer(builder, spec)
    requests = [
        server.workload.frame_request(params.n_frames - 1, name=f"req{i}")
        for i in range(config["requests"])
    ]

    # Embedded oracle: one request per distinct start, resident vs. fresh.
    for start in range(params.n_frames):
        probe = requests[start]
        resident = server.serve(probe)
        fresh = serve_fresh(builder, probe, spec)
        if asdict(resident.result) != asdict(fresh.result) or resident.outputs != fresh.outputs:
            raise SystemExit(
                f"serving oracle: resident result for {probe.name} diverged "
                "from fresh elaboration"
            )

    t0 = time.perf_counter()
    results = server.serve_many(requests)
    resident_wall = time.perf_counter() - t0
    resident = ServingStats.of(results, resident_wall, server.elaborate_seconds)

    baseline_latencies = []
    for request in requests:
        t1 = time.perf_counter()
        serve_fresh(builder, request, spec)
        baseline_latencies.append(time.perf_counter() - t1)
    baseline = ServingStats(
        requests=len(requests),
        wall_seconds=sum(baseline_latencies),
        elaborate_seconds=0.0,  # the baseline pays elaboration inside every request
        latencies=baseline_latencies,
    )

    return {
        "workload": f"vorbis_B (n={params.n}, n_frames={params.n_frames})",
        "resident": resident.row(),
        "elaborate_per_request": baseline.row(),
        "amortisation": safe_ratio(
            resident.requests_per_second, baseline.requests_per_second
        ),
    }


def sharded_sweep(size: str, processes: int, backend: str = "compiled") -> Dict[str, Any]:
    """The full workload set fanned across processes by the shard runner."""
    params = SIZES[size]
    tasks = [
        SweepTask(
            name=f"vorbis_{letter}",
            builder=vorbis_partitions.build_partition,
            args=(letter, params["vorbis"]),
            backend=backend,
        )
        for letter in vorbis_partitions.PARTITION_ORDER
    ]
    tasks += [
        SweepTask(
            name=f"raytracer_{letter}",
            builder=rt_partitions.build_partition,
            args=(letter, params["raytracer"]),
            backend=backend,
        )
        for letter in rt_partitions.PARTITION_ORDER
    ]
    tasks += [
        SweepTask(
            name=name,
            builder=vorbis_partitions.build_multi_partition,
            args=(letter, params["vorbis"]),
            backend=backend,
            engine_kinds={
                d.name: ("hw" if d.name.startswith("HW") else "sw")
                for d in vorbis_partitions.multi_partition_domains(letter)
            },
        )
        for name, letter in MULTI_DOMAIN.items()
    ]
    report = run_sweep(tasks, processes=processes)
    print(f"\n=== Sharded sweep ({report.processes} processes) ===")
    print(report.table())
    return {
        "processes": report.processes,
        "tasks": len(report.outcomes),
        "wall_seconds": report.wall_seconds,
        "worker_seconds": report.worker_seconds,
        "speedup": report.speedup,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workloads, 1 repeat (CI smoke run)"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timed repetitions per workload (best-of)"
    )
    parser.add_argument(
        "--processes", type=int, default=0,
        help="also run the workload set as a sharded multiprocess sweep",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=Path(__file__).resolve().parent,
        help="directory for BENCH_<backend>.json",
    )
    args = parser.parse_args(argv)
    size = "quick" if args.quick else "full"
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 5)

    workloads = build_workloads(size)
    bench: Dict[str, Dict[str, Any]] = {backend: {} for backend in BACKENDS}
    mismatches = []

    for name, workload, is_fabric in workloads:
        for backend in BACKENDS:
            bench[backend][name] = measure(workload, backend, repeats, is_fabric)
        for backend in FAST_BACKENDS:
            if bench[backend][name]["result"] != bench["interp"][name]["result"]:
                mismatches.append(f"{name}:{backend}")

    # -- report ------------------------------------------------------------
    header = (
        f"{'workload':<14} {'interp (s)':>11} {'compiled (s)':>13} {'source (s)':>11} "
        f"{'src/int':>8} {'src/cmp':>8} {'firings/s (source)':>19}"
    )
    print("\n=== Figure 13 workloads (+ multi-domain fabric): interp vs. compiled vs. source ===")
    print(header)
    print("-" * len(header))
    total = {backend: 0.0 for backend in BACKENDS}
    src_vs_compiled: Dict[str, float] = {}
    for name, _, _ in workloads:
        ti = bench["interp"][name]["wall_seconds"]
        tc = bench["compiled"][name]["wall_seconds"]
        ts = bench["source"][name]["wall_seconds"]
        total["interp"] += ti
        total["compiled"] += tc
        total["source"] += ts
        src_vs_compiled[name] = tc / ts if ts > 0 else float("inf")
        print(
            f"{name:<14} {ti:>11.4f} {tc:>13.4f} {ts:>11.4f} "
            f"{ti / ts:>7.2f}x {tc / ts:>7.2f}x "
            f"{bench['source'][name]['firings_per_sec']:>18,.0f}"
        )
    print("-" * len(header))
    print(
        f"{'TOTAL':<14} {total['interp']:>11.4f} {total['compiled']:>13.4f} "
        f"{total['source']:>11.4f} {total['interp'] / total['source']:>7.2f}x "
        f"{total['compiled'] / total['source']:>7.2f}x"
    )
    fig13 = [n for n, _, _ in workloads if n.startswith(("vorbis_", "raytracer_"))]
    fast_partitions = sorted(
        (n for n in fig13 if src_vs_compiled[n] >= 1.25),
        key=lambda n: -src_vs_compiled[n],
    )
    print(
        f"source >= 1.25x over compiled on {len(fast_partitions)} fig13 partition(s): "
        + (", ".join(f"{n} ({src_vs_compiled[n]:.2f}x)" for n in fast_partitions) or "none")
    )
    if mismatches:
        print(f"\nBACKEND MISMATCH on: {', '.join(mismatches)}")
    else:
        print("\nAll CosimResult statistics bitwise identical across backends.")

    # -- transport ablation ------------------------------------------------
    ablation = transport_ablation(workloads, repeats, size, compiled_stats=bench["compiled"])
    print("\n=== Transport dataplane: interpreted vs. compiled (rule backend = compiled) ===")
    t_header = f"{'workload':<14} {'interp tx (s)':>13} {'compiled tx (s)':>15} {'speedup':>8} {'messages':>9}"
    print(t_header)
    print("-" * len(t_header))
    for name, row in ablation.items():
        print(
            f"{name:<14} {row['interp_transport_seconds']:>13.4f} "
            f"{row['compiled_transport_seconds']:>15.4f} {row['speedup']:>7.2f}x "
            f"{row['channel_messages']:>9}"
        )

    dataplane = dataplane_microbench(size)
    print("\n=== Dataplane microbenchmark: pure transport throughput (no rule engines) ===")
    d_header = f"{'config':<12} {'interp (elem/s)':>16} {'compiled (elem/s)':>18} {'speedup':>8}"
    print(d_header)
    print("-" * len(d_header))
    for name, row in dataplane.items():
        print(
            f"{name:<12} {row['interp_elements_per_sec']:>16,.0f} "
            f"{row['compiled_elements_per_sec']:>18,.0f} {row['speedup']:>7.2f}x"
        )

    # -- kernel microbenchmark ---------------------------------------------
    kernels_bench = kernel_microbench(size)
    print("\n=== Kernel dataplane: per-kernel backend throughput (cache off) ===")
    k_header = f"{'kernel':<22} {'oracle (s)':>12} {'python (s)':>12} {'numpy (s)':>12} {'py x':>6} {'np x':>6}"
    print(k_header)
    print("-" * len(k_header))
    for name, row in kernels_bench.items():
        if "fused_seconds" in row:
            print(
                f"{name:<22} {row['reference_seconds']:>12.6f} "
                f"{row['fused_seconds']:>12.6f} {'-':>12} "
                f"{row['fused_speedup']:>5.2f}x {'-':>6}"
            )
            continue
        np_s = row.get("numpy_seconds")
        np_x = row.get("numpy_speedup")
        print(
            f"{name:<22} {row['oracle_seconds']:>12.6f} {row['python_seconds']:>12.6f} "
            f"{(f'{np_s:.6f}' if np_s is not None else '-'):>12} "
            f"{row['python_speedup']:>5.2f}x "
            f"{(f'{np_x:.2f}x' if np_x is not None else '-'):>6}"
        )

    # -- grouped execution -------------------------------------------------
    grouped = grouped_execution(size, repeats, processes=args.processes or 2)
    print(
        f"\n=== Grouped execution: {grouped['groups']} independent pipelines "
        f"({grouped['letters']}), lockstep vs. per-group clocks ==="
    )
    for backend in BACKENDS:
        row = grouped[backend]
        print(
            f"{backend:<9} lockstep {row['lockstep_seconds']:.4f}s | grouped "
            f"{row['grouped_seconds']:.4f}s -> {row['grouped_speedup_vs_lockstep']:.2f}x"
        )
    print(
        f"processes {grouped['processes']} workers {grouped['process_seconds']:.4f}s "
        f"({grouped['process_speedup_vs_grouped']:.2f}x vs. serial grouped, "
        f"{grouped['cpus']} CPU(s))"
    )
    print(
        "merged grouped CosimResult bitwise identical serial vs. processes and "
        "across backends; lockstep agrees on firings/traffic/checksums"
    )

    # -- distributed execution ---------------------------------------------
    distributed = distributed_execution(size, repeats, processes=args.processes or 2)
    print(
        f"\n=== Distributed co-simulation: worker processes + framed wire words "
        f"({distributed['cpus']} CPU(s)) ==="
    )
    x_header = (
        f"{'workload':<15} {'place':<7} {'grouped (s)':>12} {'lockstep (s)':>13} "
        f"{'shm (s)':>9} {'socket (s)':>11} {'workers':>8} {'records':>8} {'words':>8}"
    )
    print(x_header)
    print("-" * len(x_header))
    for name, row in distributed["workloads"].items():
        print(
            f"{name:<15} {row['placement']:<7} {row['grouped_seconds']:>12.4f} "
            f"{row['lockstep_seconds']:>13.4f} {row['shm']['seconds']:>9.4f} "
            f"{row['socket']['seconds']:>11.4f} {row['shm']['workers']:>8} "
            f"{row['shm']['records']:>8} {row['shm']['words']:>8}"
        )
    print(
        "every distributed CosimResult bitwise identical to the serial grouped "
        "run (both carriers); wall-clock wins need >1 CPU -- see EXPERIMENTS.md"
    )

    # -- persistent serving ------------------------------------------------
    serving = serving_benchmark(size)
    print(
        f"\n=== Persistent serving: resident fabric vs. elaborate-per-request "
        f"({serving['workload']}) ==="
    )
    s_header = f"{'arm':<22} {'req/s':>10} {'p50 (ms)':>9} {'p99 (ms)':>9}"
    print(s_header)
    print("-" * len(s_header))
    for arm in ("resident", "elaborate_per_request"):
        row = serving[arm]
        print(
            f"{arm:<22} {row['requests_per_second']:>10,.1f} "
            f"{row['p50_ms']:>9.3f} {row['p99_ms']:>9.3f}"
        )
    print(
        f"{serving['resident']['requests']} requests; resident serving sustains "
        f"{serving['amortisation']:.1f}x the elaborate-per-request throughput "
        "(sampled requests verified bitwise against fresh elaborations)"
    )

    # -- sharded sweep -----------------------------------------------------
    sweep = None
    if args.processes:
        sweep = sharded_sweep(size, args.processes)

    # -- persist -----------------------------------------------------------
    meta = {
        "size": size,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "machine": platform_mod.machine(),
        "aggregate_wall_seconds": None,  # per-file below
    }
    args.out_dir.mkdir(parents=True, exist_ok=True)
    for backend in BACKENDS:
        payload = {
            "meta": {**meta, "backend": backend, "aggregate_wall_seconds": total[backend]},
            "workloads": {
                name: {k: v for k, v in stats.items() if k != "result"}
                for name, stats in bench[backend].items()
            },
        }
        if backend == "compiled":
            payload["transport_ablation"] = ablation
            payload["transport_dataplane"] = dataplane
            payload["kernel_microbench"] = kernels_bench
            payload["grouped_execution"] = grouped
            payload["distributed"] = distributed
            payload["serving"] = serving
            if sweep is not None:
                payload["sweep"] = sweep
        elif backend == "source":
            payload["source_vs_compiled"] = src_vs_compiled
            payload["fig13_partitions_at_1_25x"] = fast_partitions
        # Quick (CI smoke) runs get their own files so they never clobber
        # the committed full-size trajectory that EXPERIMENTS.md records.
        suffix = "_quick" if size == "quick" else ""
        out_path = args.out_dir / f"BENCH_{backend}{suffix}.json"
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out_path}")

    return 1 if mismatches else 0


if __name__ == "__main__":
    raise SystemExit(main())
