"""Ablation of the communication-granularity optimisation (Section 2.1).

Transferring a frame one word at a time pays a bus-transaction overhead per
word; burst (DMA) transfers amortise it per message.  The paper motivates its
compiler-managed marshaling with exactly this observation, so this benchmark
runs a hardware-heavy Vorbis partition both ways and checks that bursting is
what makes the accelerated partitions viable.
"""

from __future__ import annotations

import pytest

from conftest import VORBIS_PARAMS, print_table, run_vorbis_partition


@pytest.fixture(scope="module")
def granularity_results():
    return {
        "partition E, burst (DMA)": run_vorbis_partition("E", burst=True),
        "partition E, word-at-a-time": run_vorbis_partition("E", burst=False),
        "partition A, burst (DMA)": run_vorbis_partition("A", burst=True),
        "partition A, word-at-a-time": run_vorbis_partition("A", burst=False),
    }


def test_granularity_table(granularity_results, benchmark):
    rows = {
        name: result.fpga_cycles / VORBIS_PARAMS.n_frames
        for name, result in granularity_results.items()
    }
    print_table(
        "Communication granularity: burst vs. word-at-a-time transfers",
        rows,
        "FPGA cycles / frame",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(result.completed for result in granularity_results.values())


def test_bursting_never_hurts(granularity_results):
    assert (
        granularity_results["partition E, burst (DMA)"].fpga_cycles
        <= granularity_results["partition E, word-at-a-time"].fpga_cycles
    )
    assert (
        granularity_results["partition A, burst (DMA)"].fpga_cycles
        <= granularity_results["partition A, word-at-a-time"].fpga_cycles
    )


def test_word_transfers_increase_channel_occupancy(granularity_results):
    burst = granularity_results["partition A, burst (DMA)"]
    word = granularity_results["partition A, word-at-a-time"]
    assert word.channel_busy_cycles > 2 * burst.channel_busy_cycles
